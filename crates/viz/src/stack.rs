//! Stack and stack-and-heap diagrams (paper Fig. 6).
//!
//! One renderer covers all three figure variants:
//!
//! * Fig. 6a — stack only, values inlined (`show_heap: false,
//!   inline_values: true`): used to teach stack frames before references
//!   are introduced;
//! * Fig. 6b — stack and heap with reference arrows (MiniPy);
//! * Fig. 6c — the same for MiniC, where values can live *on the stack*,
//!   pointers can target the stack, and invalid pointers are drawn as a
//!   cross.
//!
//! Arrows are resolved purely by address: a reference pointing at a heap
//! object's address is drawn to that heap box; one pointing at another
//! stack slot is drawn to that slot; anything else renders textually.

use crate::svg::SvgDoc;
use state::{AbstractType, Content, Frame, Location, Value, Variable};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Options for the stack diagram renderers.
#[derive(Debug, Clone)]
pub struct StackDiagramOptions {
    /// Draw the heap column and reference arrows.
    pub show_heap: bool,
    /// Render reference targets inline instead of as arrows (Fig. 6a).
    pub inline_values: bool,
    /// Include the globals box.
    pub show_globals: bool,
    /// Diagram title.
    pub title: Option<String>,
}

impl Default for StackDiagramOptions {
    fn default() -> Self {
        StackDiagramOptions {
            show_heap: true,
            inline_values: false,
            show_globals: true,
            title: None,
        }
    }
}

impl StackDiagramOptions {
    /// Fig. 6a preset: stack only, inlined values.
    pub fn stack_only() -> Self {
        StackDiagramOptions {
            show_heap: false,
            inline_values: true,
            ..StackDiagramOptions::default()
        }
    }
}

/// A heap object discovered by walking the reachable values.
#[derive(Debug, Clone)]
struct HeapObject {
    addr: u64,
    value: Value,
}

/// Collects unique heap objects reachable from the frame chain and the
/// globals, in discovery order.
fn collect_heap(frame: &Frame, globals: &[Variable]) -> Vec<HeapObject> {
    let mut seen = BTreeMap::new();
    let mut order = Vec::new();
    // Only *reference targets* become heap boxes: the elements inside an
    // allocated block render inline within their block's box, while
    // anything another pointer reaches becomes its own box.
    let mut walk_value = |v: &Value| {
        let mut stack = vec![v.clone()];
        while let Some(v) = stack.pop() {
            if v.abstract_type() == AbstractType::Ref {
                if let Content::Ref(target) = v.content() {
                    if target.location() == Location::Heap {
                        if let Some(addr) = target.address() {
                            if !seen.contains_key(&addr)
                                && target.abstract_type() != AbstractType::None
                            {
                                seen.insert(addr, (**target).clone());
                                order.push(addr);
                            }
                        }
                    }
                }
            }
            for child in v.children() {
                stack.push(child.clone());
            }
        }
    };
    for f in frame.chain() {
        for var in f.variables() {
            walk_value(var.value());
        }
    }
    for g in globals {
        walk_value(g.value());
    }
    order
        .into_iter()
        .map(|addr| HeapObject {
            addr,
            value: seen[&addr].clone(),
        })
        .collect()
}

/// How a variable's cell renders: plain text, an arrow to an address, or
/// an invalid-pointer cross.
#[derive(Debug, Clone, PartialEq)]
enum Cell {
    Text(String),
    ArrowTo(u64),
    Invalid,
}

fn cell_for(value: &Value, opts: &StackDiagramOptions) -> Cell {
    match value.abstract_type() {
        AbstractType::Invalid => Cell::Invalid,
        AbstractType::Ref => {
            let Content::Ref(target) = value.content() else {
                return Cell::Text(state::render_value(value));
            };
            if opts.inline_values {
                return Cell::Text(state::render_value(target));
            }
            match target.address() {
                Some(addr) if opts.show_heap => Cell::ArrowTo(addr),
                Some(addr) => Cell::Text(format!("&{addr:#x}")),
                None => Cell::Text(state::render_value(target)),
            }
        }
        _ => Cell::Text(state::render_value(value)),
    }
}

/// Renders the diagram as plain text (terminal tools, tests).
///
/// # Examples
///
/// ```
/// use state::{Frame, Variable, Value, Prim, Scope, SourceLocation};
/// let mut f = Frame::new("main", 0, SourceLocation::new("t.c", 3));
/// f.insert_variable(Variable::new("x", Scope::Local, Value::primitive(Prim::Int(7), "int")));
/// let text = viz::stack::render_text(&f, &[], &viz::stack::StackDiagramOptions::default());
/// assert!(text.contains("main"));
/// assert!(text.contains("x: 7"));
/// ```
pub fn render_text(frame: &Frame, globals: &[Variable], opts: &StackDiagramOptions) -> String {
    let mut out = String::new();
    if let Some(title) = &opts.title {
        let _ = writeln!(out, "== {title} ==");
    }
    let frames: Vec<&Frame> = frame.chain().collect();
    for f in frames.iter().rev() {
        let _ = writeln!(out, "┌─ {} ({})", f.name(), f.location());
        for var in f.variables() {
            match cell_for(var.value(), opts) {
                Cell::Text(t) => {
                    let _ = writeln!(out, "│  {}: {}", var.name(), t);
                }
                Cell::ArrowTo(addr) => {
                    let _ = writeln!(out, "│  {}: ──▶ [{addr:#x}]", var.name());
                }
                Cell::Invalid => {
                    let _ = writeln!(out, "│  {}: ✗", var.name());
                }
            }
        }
        let _ = writeln!(out, "└─");
    }
    if opts.show_globals && !globals.is_empty() {
        let _ = writeln!(out, "globals:");
        for g in globals {
            match cell_for(g.value(), opts) {
                Cell::Text(t) => {
                    let _ = writeln!(out, "  {}: {}", g.name(), t);
                }
                Cell::ArrowTo(addr) => {
                    let _ = writeln!(out, "  {}: ──▶ [{addr:#x}]", g.name());
                }
                Cell::Invalid => {
                    let _ = writeln!(out, "  {}: ✗", g.name());
                }
            }
        }
    }
    if opts.show_heap {
        let heap = collect_heap(frame, globals);
        if !heap.is_empty() {
            let _ = writeln!(out, "heap:");
            for obj in heap {
                let _ = writeln!(
                    out,
                    "  [{:#x}] {} = {}",
                    obj.addr,
                    obj.value.language_type(),
                    state::render_value(&obj.value)
                );
            }
        }
    }
    out
}

/// Renders the diagram as SVG.
pub fn render_svg(frame: &Frame, globals: &[Variable], opts: &StackDiagramOptions) -> String {
    const ROW: f64 = 18.0;
    const STACK_X: f64 = 20.0;
    const STACK_W: f64 = 280.0;
    const HEAP_X: f64 = 380.0;
    const HEAP_W: f64 = 300.0;

    let mut doc = SvgDoc::new(HEAP_X + HEAP_W + 40.0, 80.0);
    let mut y = 20.0;
    if let Some(title) = &opts.title {
        doc.text(STACK_X, y, 14.0, "start", "black", title);
        y += 26.0;
    }

    // Row anchor of each stack slot address, and pending arrows.
    let mut slot_anchor: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    let mut arrows: Vec<((f64, f64), u64)> = Vec::new();

    let frames: Vec<&Frame> = frame.chain().collect();
    for f in frames.iter().rev() {
        let nrows = f.variables().count().max(1) as f64;
        let box_h = 22.0 + nrows * ROW;
        doc.rect(STACK_X, y, STACK_W, box_h, "#f4f6fb", "#334");
        doc.text(
            STACK_X + 8.0,
            y + 15.0,
            12.0,
            "start",
            "#223",
            &format!("{} — {}", f.name(), f.location()),
        );
        let mut ry = y + 22.0 + 13.0;
        for var in f.variables() {
            if let Some(addr) = var.value().address() {
                slot_anchor.insert(addr, (STACK_X + STACK_W, ry - 4.0));
            }
            match cell_for(var.value(), opts) {
                Cell::Text(t) => {
                    let text = format!("{}: {}", var.name(), truncate(&t, 34));
                    doc.text(STACK_X + 12.0, ry, 11.0, "start", "black", &text);
                }
                Cell::ArrowTo(addr) => {
                    doc.text(
                        STACK_X + 12.0,
                        ry,
                        11.0,
                        "start",
                        "black",
                        &format!("{}: ●", var.name()),
                    );
                    arrows.push(((STACK_X + STACK_W - 10.0, ry - 4.0), addr));
                }
                Cell::Invalid => {
                    doc.text(
                        STACK_X + 12.0,
                        ry,
                        11.0,
                        "start",
                        "black",
                        &format!("{}:", var.name()),
                    );
                    doc.cross(STACK_X + 90.0, ry - 4.0, 5.0, "#c00");
                }
            }
            ry += ROW;
        }
        y += box_h + 14.0;
    }

    if opts.show_globals && !globals.is_empty() {
        let nrows = globals.len() as f64;
        let box_h = 22.0 + nrows * ROW;
        doc.rect(STACK_X, y, STACK_W, box_h, "#fbf6ee", "#553");
        doc.text(STACK_X + 8.0, y + 15.0, 12.0, "start", "#432", "globals");
        let mut ry = y + 22.0 + 13.0;
        for g in globals {
            if let Some(addr) = g.value().address() {
                slot_anchor.insert(addr, (STACK_X + STACK_W, ry - 4.0));
            }
            match cell_for(g.value(), opts) {
                Cell::Text(t) => {
                    doc.text(
                        STACK_X + 12.0,
                        ry,
                        11.0,
                        "start",
                        "black",
                        &format!("{}: {}", g.name(), truncate(&t, 34)),
                    );
                }
                Cell::ArrowTo(addr) => {
                    doc.text(
                        STACK_X + 12.0,
                        ry,
                        11.0,
                        "start",
                        "black",
                        &format!("{}: ●", g.name()),
                    );
                    arrows.push(((STACK_X + STACK_W - 10.0, ry - 4.0), addr));
                }
                Cell::Invalid => {
                    doc.text(
                        STACK_X + 12.0,
                        ry,
                        11.0,
                        "start",
                        "black",
                        &format!("{}:", g.name()),
                    );
                    doc.cross(STACK_X + 90.0, ry - 4.0, 5.0, "#c00");
                }
            }
            ry += ROW;
        }
        let _ = y; // globals box is the last stack-column element
        y += box_h + 14.0;
        doc.ensure(STACK_X, y);
    }

    // Heap column.
    let mut heap_anchor: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    if opts.show_heap {
        let mut hy = 20.0;
        for obj in collect_heap(frame, globals) {
            let text = state::render_value(&obj.value);
            let box_h = 44.0;
            doc.rect(HEAP_X, hy, HEAP_W, box_h, "#eef8ef", "#252");
            doc.text(
                HEAP_X + 8.0,
                hy + 15.0,
                11.0,
                "start",
                "#141",
                &format!("{} @ {:#x}", obj.value.language_type(), obj.addr),
            );
            doc.text(
                HEAP_X + 8.0,
                hy + 33.0,
                11.0,
                "start",
                "black",
                &truncate(&text, 42),
            );
            heap_anchor.insert(obj.addr, (HEAP_X, hy + box_h / 2.0));
            hy += box_h + 12.0;
        }
    }

    // Arrows, resolved by address: heap boxes first, then stack slots.
    for ((x, yy), target) in arrows {
        if let Some(&(hx, hyy)) = heap_anchor.get(&target) {
            doc.arrow(x, yy, hx, hyy, "#36c");
        } else if let Some(&(sx, syy)) = slot_anchor.get(&target) {
            doc.arrow(x, yy, sx + 6.0, syy, "#c63");
        } else {
            doc.text(x, yy, 10.0, "start", "#666", &format!("{target:#x}"));
        }
    }
    doc.finish()
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_owned()
    } else {
        let mut out: String = s.chars().take(max.saturating_sub(1)).collect();
        out.push('…');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use state::{Prim, Scope, SourceLocation};

    fn frame_with(vars: Vec<(&str, Value)>) -> Frame {
        let mut f = Frame::new("main", 0, SourceLocation::new("t.c", 5));
        for (n, v) in vars {
            f.insert_variable(Variable::new(n, Scope::Local, v));
        }
        f
    }

    #[test]
    fn text_inlines_or_arrows_by_option() {
        let heap_list = Value::list(
            vec![
                Value::primitive(Prim::Int(1), "int"),
                Value::primitive(Prim::Int(2), "int"),
            ],
            "list",
        )
        .with_location(Location::Heap)
        .with_address(0x5000);
        let f = frame_with(vec![(
            "xs",
            Value::reference(heap_list, "ref[list]").with_address(0x100),
        )]);

        let inline = render_text(&f, &[], &StackDiagramOptions::stack_only());
        assert!(inline.contains("xs: [1, 2]"));
        assert!(!inline.contains("heap:"));

        let arrows = render_text(&f, &[], &StackDiagramOptions::default());
        assert!(arrows.contains("xs: ──▶ [0x5000]"));
        assert!(arrows.contains("heap:"));
        assert!(arrows.contains("[0x5000] list = [1, 2]"));
    }

    #[test]
    fn invalid_pointers_marked() {
        let f = frame_with(vec![("p", Value::invalid("int*").with_address(0x10))]);
        let text = render_text(&f, &[], &StackDiagramOptions::default());
        assert!(text.contains("p: ✗"));
        let svg = render_svg(&f, &[], &StackDiagramOptions::default());
        // The cross renders as two crossing lines in red.
        assert!(svg.contains("#c00"));
    }

    #[test]
    fn svg_draws_frames_globals_and_heap_arrows() {
        let heap_obj = Value::structure(
            vec![("v".into(), Value::primitive(Prim::Int(9), "int"))],
            "Node",
        )
        .with_location(Location::Heap)
        .with_address(0x7000);
        let f = frame_with(vec![(
            "n",
            Value::reference(heap_obj, "Node*").with_address(0x200),
        )]);
        let globals = vec![Variable::new(
            "g",
            Scope::Global,
            Value::primitive(Prim::Int(3), "int").with_address(0x1000),
        )];
        let svg = render_svg(&f, &globals, &StackDiagramOptions::default());
        assert!(svg.contains("main — t.c:5"));
        assert!(svg.contains("globals"));
        assert!(svg.contains("Node @ 0x7000"));
        assert!(svg.contains("g: 3"));
        // Arrow from the slot toward the heap box.
        assert!(svg.contains("#36c"));
    }

    #[test]
    fn stack_to_stack_arrows() {
        // C-style: q points at x's stack slot (Fig. 6c).
        let x = Value::primitive(Prim::Int(5), "int")
            .with_location(Location::Stack)
            .with_address(0x7fff0);
        let q_target = x.clone();
        let f = frame_with(vec![
            ("x", x),
            (
                "q",
                Value::reference(q_target, "int*").with_address(0x7ffe0),
            ),
        ]);
        let svg = render_svg(&f, &[], &StackDiagramOptions::default());
        assert!(svg.contains("#c63"), "stack-target arrow color present");
    }

    #[test]
    fn parent_frames_render_above() {
        let mut outer = Frame::new("main", 0, SourceLocation::new("t.c", 9));
        outer.insert_variable(Variable::new(
            "total",
            Scope::Local,
            Value::primitive(Prim::Int(10), "int"),
        ));
        let inner = {
            let mut f = Frame::new("helper", 1, SourceLocation::new("t.c", 2));
            f.insert_variable(Variable::new(
                "x",
                Scope::Local,
                Value::primitive(Prim::Int(1), "int"),
            ));
            f.set_parent(outer);
            f
        };
        let text = render_text(&inner, &[], &StackDiagramOptions::default());
        let main_pos = text.find("main").unwrap();
        let helper_pos = text.find("helper").unwrap();
        assert!(main_pos < helper_pos, "outermost frame first");
    }

    #[test]
    fn long_values_truncated_in_svg() {
        let long_list = Value::list(
            (0..100)
                .map(|i| Value::primitive(Prim::Int(i), "int"))
                .collect(),
            "list",
        )
        .with_location(Location::Heap)
        .with_address(0x9000);
        let f = frame_with(vec![(
            "big",
            Value::reference(long_list, "ref[list]").with_address(0x300),
        )]);
        let svg = render_svg(&f, &[], &StackDiagramOptions::default());
        assert!(svg.contains('…'));
    }
}
