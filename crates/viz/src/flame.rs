//! Flamegraph renderers over collapsed call stacks.
//!
//! Input is the profiler's path table — `(frames, units)` pairs with
//! frames outermost first — kept as plain data so this crate stays
//! dependency-free. Three outputs: the standard semicolon-separated
//! `.folded` format (consumable by any flamegraph tool), an indented
//! text tree for terminals, and a self-contained SVG icicle graph.

use crate::svg::SvgDoc;
use std::fmt::Write as _;

/// Renders collapsed stacks in the flamegraph `.folded` format: one
/// `outer;inner;leaf units` line per unique stack, sorted, zero-unit
/// stacks skipped.
///
/// # Examples
///
/// ```
/// let stacks = vec![
///     (vec!["main".to_string(), "fib".to_string()], 10),
///     (vec!["main".to_string()], 2),
/// ];
/// let folded = viz::flame::render_folded(&stacks);
/// assert_eq!(folded, "main 2\nmain;fib 10\n");
/// ```
pub fn render_folded(stacks: &[(Vec<String>, u64)]) -> String {
    let mut lines: Vec<String> = stacks
        .iter()
        .filter(|(frames, units)| *units > 0 && !frames.is_empty())
        .map(|(frames, units)| format!("{} {units}", frames.join(";")))
        .collect();
    lines.sort();
    let mut out = String::new();
    for l in lines {
        let _ = writeln!(out, "{l}");
    }
    out
}

/// One merged node of the flame tree.
#[derive(Debug, Default)]
struct Node {
    /// Units attributed to exactly this stack (self units).
    own: u64,
    /// Children in first-seen order.
    children: Vec<(String, Node)>,
}

impl Node {
    fn child(&mut self, name: &str) -> &mut Node {
        if let Some(i) = self.children.iter().position(|(n, _)| n == name) {
            return &mut self.children[i].1;
        }
        self.children.push((name.to_owned(), Node::default()));
        &mut self.children.last_mut().expect("just pushed").1
    }

    fn insert(&mut self, frames: &[String], units: u64) {
        match frames.split_first() {
            None => self.own += units,
            Some((head, rest)) => self.child(head).insert(rest, units),
        }
    }

    /// Own units plus everything below.
    fn total(&self) -> u64 {
        self.own + self.children.iter().map(|(_, c)| c.total()).sum::<u64>()
    }

    fn sort(&mut self) {
        self.children
            .sort_by(|(an, a), (bn, b)| b.total().cmp(&a.total()).then_with(|| an.cmp(bn)));
        for (_, c) in &mut self.children {
            c.sort();
        }
    }
}

fn build(stacks: &[(Vec<String>, u64)]) -> Node {
    let mut root = Node::default();
    for (frames, units) in stacks {
        if *units > 0 && !frames.is_empty() {
            root.insert(frames, *units);
        }
    }
    root.sort();
    root
}

/// Renders the merged flame tree as indented text, hottest subtree
/// first, with per-node total units and a percent-of-run column.
pub fn render_text(stacks: &[(Vec<String>, u64)]) -> String {
    fn walk(node: &Node, name: &str, depth: usize, grand: u64, out: &mut String) {
        let total = node.total();
        let pct = if grand == 0 {
            0.0
        } else {
            100.0 * total as f64 / grand as f64
        };
        let _ = writeln!(
            out,
            "{:>10} {pct:>5.1}%  {}{name}",
            total,
            "  ".repeat(depth)
        );
        for (child_name, child) in &node.children {
            walk(child, child_name, depth + 1, grand, out);
        }
    }
    let root = build(stacks);
    let grand = root.total();
    let mut out = String::new();
    for (name, node) in &root.children {
        walk(node, name, 0, grand, &mut out);
    }
    out
}

/// Renders an SVG icicle flamegraph: roots on top, callees below,
/// width proportional to total units.
pub fn render_svg(stacks: &[(Vec<String>, u64)]) -> String {
    const WIDTH: f64 = 720.0;
    const ROW: f64 = 18.0;
    const PALETTE: [&str; 5] = ["#e4572e", "#f3a712", "#a8c686", "#669bbc", "#9b5de5"];

    fn depth_of(node: &Node) -> usize {
        1 + node
            .children
            .iter()
            .map(|(_, c)| depth_of(c))
            .max()
            .unwrap_or(0)
    }

    #[allow(clippy::too_many_arguments)]
    fn draw(doc: &mut SvgDoc, node: &Node, name: &str, x: f64, y: f64, w: f64, color: usize) {
        doc.rect(
            x,
            y,
            w.max(1.0),
            ROW - 2.0,
            PALETTE[color % PALETTE.len()],
            "white",
        );
        if w > 40.0 {
            let label = format!("{name} ({})", node.total());
            doc.text(x + 4.0, y + ROW - 7.0, 10.0, "start", "black", &label);
        }
        let total = node.total();
        if total == 0 {
            return;
        }
        // Children left to right; the own-units share stays unlabelled.
        let mut cx = x;
        for (i, (child_name, child)) in node.children.iter().enumerate() {
            let cw = w * child.total() as f64 / total as f64;
            draw(doc, child, child_name, cx, y + ROW, cw, color + i + 1);
            cx += cw;
        }
    }

    let root = build(stacks);
    let grand = root.total();
    let rows = depth_of(&root).max(1);
    let mut doc = SvgDoc::new(WIDTH + 20.0, rows as f64 * ROW + 20.0);
    if grand > 0 {
        let mut cx = 10.0;
        for (i, (name, node)) in root.children.iter().enumerate() {
            let w = WIDTH * node.total() as f64 / grand as f64;
            draw(&mut doc, node, name, cx, 10.0, w, i);
            cx += w;
        }
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stacks() -> Vec<(Vec<String>, u64)> {
        let s = |names: &[&str]| names.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
        vec![
            (s(&["main"]), 5),
            (s(&["main", "fib"]), 20),
            (s(&["main", "fib", "fib"]), 40),
            (s(&["main", "init"]), 2),
            (s(&["dead"]), 0),
        ]
    }

    #[test]
    fn folded_is_sorted_and_skips_zero_stacks() {
        let folded = render_folded(&stacks());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            ["main 5", "main;fib 20", "main;fib;fib 40", "main;init 2"]
        );
    }

    #[test]
    fn text_tree_merges_and_orders_by_heat() {
        let text = render_text(&stacks());
        let main_at = text.find("main").unwrap();
        let fib_at = text.find("fib").unwrap();
        let init_at = text.find("init").unwrap();
        assert!(main_at < fib_at && fib_at < init_at, "{text}");
        // main's total merges all its stacks: 5 + 20 + 40 + 2.
        assert!(text.contains("67"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
    }

    #[test]
    fn svg_nests_callees_under_callers() {
        let svg = render_svg(&stacks());
        assert!(svg.contains("main (67)"));
        assert!(svg.contains("fib (60)"));
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn empty_input_renders_empty_outputs() {
        assert_eq!(render_folded(&[]), "");
        assert_eq!(render_text(&[]), "");
        assert!(render_svg(&[]).starts_with("<svg"));
    }
}
