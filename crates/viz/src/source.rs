//! Source listings with a current-line marker, shown by every tool next
//! to its diagram (the left pane of the paper's Fig. 1 and Fig. 7).

use crate::svg::SvgDoc;
use std::fmt::Write as _;

/// Options for source rendering.
#[derive(Debug, Clone, Default)]
pub struct SourceView {
    /// 1-based line to mark as current, if any.
    pub current_line: Option<u32>,
    /// 1-based lines carrying breakpoints (drawn with a dot).
    pub breakpoints: Vec<u32>,
    /// Title (usually the file name).
    pub title: Option<String>,
}

impl SourceView {
    /// Sets the current line (builder style).
    #[must_use]
    pub fn at_line(mut self, line: u32) -> Self {
        self.current_line = Some(line);
        self
    }

    /// Adds a breakpoint dot (builder style).
    #[must_use]
    pub fn with_breakpoint(mut self, line: u32) -> Self {
        self.breakpoints.push(line);
        self
    }

    /// Sets the title (builder style).
    #[must_use]
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Renders as plain text with `=>` marking the current line.
    ///
    /// # Examples
    ///
    /// ```
    /// let text = viz::source::SourceView::default()
    ///     .at_line(2)
    ///     .render_text("a = 1\nb = 2\nc = 3");
    /// assert!(text.contains("=>   2 | b = 2"));
    /// ```
    pub fn render_text(&self, source: &str) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "── {t} ──");
        }
        for (i, line) in source.lines().enumerate() {
            let n = (i + 1) as u32;
            let cur = if Some(n) == self.current_line {
                "=>"
            } else {
                "  "
            };
            let bp = if self.breakpoints.contains(&n) {
                "●"
            } else {
                " "
            };
            let _ = writeln!(out, "{cur}{bp}{n:>3} | {line}");
        }
        out
    }

    /// Renders as SVG with the current line highlighted.
    pub fn render_svg(&self, source: &str) -> String {
        const ROW: f64 = 15.0;
        let lines: Vec<&str> = source.lines().collect();
        let mut doc = SvgDoc::new(460.0, 30.0 + lines.len() as f64 * ROW);
        let mut y = 18.0;
        if let Some(t) = &self.title {
            doc.text(14.0, y, 12.0, "start", "black", t);
            y += 18.0;
        }
        for (i, line) in lines.iter().enumerate() {
            let n = (i + 1) as u32;
            let ly = y + i as f64 * ROW;
            if Some(n) == self.current_line {
                doc.rect(10.0, ly - 11.0, 440.0, ROW, "#fff3c4", "#e5c85a");
            }
            if self.breakpoints.contains(&n) {
                doc.cross(16.0, ly - 4.0, 3.0, "#c22");
            }
            doc.text(26.0, ly, 10.0, "start", "#999", &format!("{n:>3}"));
            doc.text(54.0, ly, 10.0, "start", "black", line);
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int main() {\nint x = 1;\nreturn x;\n}";

    #[test]
    fn text_marks_current_and_breakpoints() {
        let text = SourceView::default()
            .at_line(2)
            .with_breakpoint(3)
            .with_title("t.c")
            .render_text(SRC);
        assert!(text.contains("── t.c ──"));
        assert!(text.contains("=>   2 | int x = 1;"));
        assert!(text.contains("●  3 | return x;"));
    }

    #[test]
    fn svg_highlights_current_line() {
        let svg = SourceView::default().at_line(3).render_svg(SRC);
        assert!(svg.contains("#fff3c4"));
        assert!(svg.contains("return x;"));
    }

    #[test]
    fn no_marker_without_current_line() {
        let text = SourceView::default().render_text(SRC);
        assert!(!text.contains("=>"));
    }
}
