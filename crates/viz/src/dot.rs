//! Graphviz DOT emitter.
//!
//! The paper's recursion tool pipes DOT text into `dot -Tsvg`; tools here
//! can emit the same text (for users who have Graphviz) while the bundled
//! [`crate::calltree`] renderer produces SVG natively.

use std::fmt::Write as _;

/// Attribute list attached to a node or edge.
type Attrs = Vec<(String, String)>;

/// A directed graph under construction.
#[derive(Debug, Clone, Default)]
pub struct Digraph {
    name: String,
    nodes: Vec<(String, Attrs)>,
    edges: Vec<(String, String, Attrs)>,
    graph_attrs: Vec<(String, String)>,
}

/// Escapes a DOT string literal.
pub fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl Digraph {
    /// Creates a digraph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Digraph {
            name: name.into(),
            ..Digraph::default()
        }
    }

    /// Sets a graph-level attribute.
    pub fn attr(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.graph_attrs.push((key.into(), value.into()));
        self
    }

    /// Adds a node with attributes.
    pub fn node<I, K, V>(&mut self, id: impl Into<String>, attrs: I) -> &mut Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        self.nodes.push((
            id.into(),
            attrs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        ));
        self
    }

    /// Adds an edge with attributes.
    pub fn edge<I, K, V>(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        attrs: I,
    ) -> &mut Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        self.edges.push((
            from.into(),
            to.into(),
            attrs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        ));
        self
    }

    /// Number of nodes so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Renders the DOT text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(&self.name));
        for (k, v) in &self.graph_attrs {
            let _ = writeln!(out, "  {k}=\"{}\";", escape(v));
        }
        for (id, attrs) in &self.nodes {
            let attr_text = attrs
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(out, "  \"{}\" [{attr_text}];", escape(id));
        }
        for (from, to, attrs) in &self.edges {
            let attr_text = attrs
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [{attr_text}];",
                escape(from),
                escape(to)
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g = Digraph::new("rec");
        g.attr("rankdir", "TB");
        g.node("n0", [("label", "f(3)"), ("color", "red")]);
        g.node("n1", [("label", "f(2)")]);
        g.edge("n0", "n1", [("label", "call")]);
        let text = g.render();
        assert!(text.starts_with("digraph \"rec\" {"));
        assert!(text.contains("\"n0\" [label=\"f(3)\", color=\"red\"];"));
        assert!(text.contains("\"n0\" -> \"n1\" [label=\"call\"];"));
        assert!(text.ends_with("}\n"));
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn escapes_quotes() {
        let mut g = Digraph::new("q");
        g.node("a", [("label", "say \"hi\"")]);
        assert!(g.render().contains("say \\\"hi\\\""));
    }
}
