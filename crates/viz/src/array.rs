//! The array-invariant view (paper Fig. 1): array cells with index
//! markers and a highlighted region, used to show loop invariants while a
//! sort executes.

use crate::svg::SvgDoc;
use state::{Content, Value};
use std::fmt::Write as _;
use std::ops::Range;

/// Specification of the array view.
#[derive(Debug, Clone, Default)]
pub struct ArrayView {
    /// Rendered cell contents, left to right.
    pub cells: Vec<String>,
    /// Named index markers (name, cell index) drawn under the array.
    pub markers: Vec<(String, usize)>,
    /// Cell range drawn with the "already sorted" darker background.
    pub highlight: Option<Range<usize>>,
    /// Title above the array.
    pub title: Option<String>,
}

impl ArrayView {
    /// Builds a view from a `LIST` value (e.g. a MiniC array or MiniPy
    /// list); other value kinds produce a single cell. Element references
    /// are followed so MiniPy lists show their contents, not addresses.
    pub fn from_value(value: &Value) -> Self {
        let cells = match value.deref_fully().content() {
            Content::List(items) => items
                .iter()
                .map(|i| state::render_value(i.deref_fully()))
                .collect(),
            _ => vec![state::render_value(value.deref_fully())],
        };
        ArrayView {
            cells,
            ..ArrayView::default()
        }
    }

    /// Adds an index marker (builder style).
    #[must_use]
    pub fn with_marker(mut self, name: impl Into<String>, index: usize) -> Self {
        self.markers.push((name.into(), index));
        self
    }

    /// Sets the highlighted (e.g. sorted) region (builder style).
    #[must_use]
    pub fn with_highlight(mut self, range: Range<usize>) -> Self {
        self.highlight = Some(range);
        self
    }

    /// Sets the title (builder style).
    #[must_use]
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Renders as plain text, markers on a second line.
    ///
    /// # Examples
    ///
    /// ```
    /// use viz::array::ArrayView;
    /// let v = ArrayView {
    ///     cells: vec!["3".into(), "1".into(), "2".into()],
    ///     ..Default::default()
    /// }
    /// .with_marker("i", 1)
    /// .with_highlight(0..1);
    /// let text = v.render_text();
    /// assert!(text.contains("▌3▐"));
    /// assert!(text.contains("i"));
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let width = self.cells.iter().map(|c| c.len()).max().unwrap_or(1).max(1);
        let mut row = String::new();
        let mut positions = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            let highlighted = self.highlight.as_ref().is_some_and(|r| r.contains(&i));
            let (l, r) = if highlighted {
                ('▌', '▐')
            } else {
                ('|', '|')
            };
            positions.push(row.chars().count() + 1 + width / 2);
            let _ = write!(row, "{l}{cell:^width$}{r}");
        }
        let _ = writeln!(out, "{row}");
        if !self.markers.is_empty() {
            let mut marker_row: Vec<char> = vec![' '; row.chars().count() + 8];
            for (name, idx) in &self.markers {
                if let Some(&pos) = positions.get(*idx) {
                    for (k, ch) in name.chars().enumerate() {
                        if pos + k < marker_row.len() {
                            marker_row[pos + k] = ch;
                        }
                    }
                }
            }
            let _ = writeln!(out, "{}", marker_row.iter().collect::<String>().trim_end());
        }
        out
    }

    /// Renders as SVG.
    pub fn render_svg(&self) -> String {
        const CELL_W: f64 = 46.0;
        const CELL_H: f64 = 34.0;
        const X0: f64 = 20.0;
        let mut y0 = 20.0;
        let mut doc = SvgDoc::new(X0 * 2.0 + CELL_W * self.cells.len().max(1) as f64, 110.0);
        if let Some(t) = &self.title {
            doc.text(X0, y0, 13.0, "start", "black", t);
            y0 += 16.0;
        }
        for (i, cell) in self.cells.iter().enumerate() {
            let x = X0 + i as f64 * CELL_W;
            let highlighted = self.highlight.as_ref().is_some_and(|r| r.contains(&i));
            let fill = if highlighted { "#b9cdb9" } else { "#f2f2f2" };
            doc.rect(x, y0, CELL_W, CELL_H, fill, "#333");
            doc.text(
                x + CELL_W / 2.0,
                y0 + CELL_H / 2.0 + 4.0,
                12.0,
                "middle",
                "black",
                cell,
            );
            doc.text(
                x + CELL_W / 2.0,
                y0 + CELL_H + 12.0,
                9.0,
                "middle",
                "#888",
                &i.to_string(),
            );
        }
        for (name, idx) in &self.markers {
            let x = X0 + (*idx as f64 + 0.5) * CELL_W;
            doc.arrow(x, y0 + CELL_H + 38.0, x, y0 + CELL_H + 18.0, "#b33");
            doc.text(x, y0 + CELL_H + 50.0, 12.0, "middle", "#b33", name);
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use state::Prim;

    #[test]
    fn from_list_value() {
        let v = Value::list(
            vec![
                Value::primitive(Prim::Int(5), "int"),
                Value::primitive(Prim::Int(2), "int"),
            ],
            "int[2]",
        );
        let view = ArrayView::from_value(&v);
        assert_eq!(view.cells, vec!["5", "2"]);
    }

    #[test]
    fn from_scalar_value_single_cell() {
        let v = Value::primitive(Prim::Int(9), "int");
        assert_eq!(ArrayView::from_value(&v).cells, vec!["9"]);
    }

    #[test]
    fn text_markers_positioned() {
        let view = ArrayView {
            cells: vec!["10".into(), "20".into(), "30".into()],
            ..Default::default()
        }
        .with_marker("j", 2);
        let text = view.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let j_pos = lines[1].find('j').unwrap();
        let cell3_pos = lines[0].find("30").unwrap();
        assert!((j_pos as i64 - cell3_pos as i64).abs() <= 2);
    }

    #[test]
    fn svg_highlights_and_markers() {
        let view = ArrayView {
            cells: vec!["1".into(), "2".into(), "3".into(), "4".into()],
            ..Default::default()
        }
        .with_highlight(0..2)
        .with_marker("i", 1)
        .with_title("insertion sort");
        let svg = view.render_svg();
        assert_eq!(svg.matches("#b9cdb9").count(), 2, "two highlighted cells");
        assert!(svg.contains("insertion sort"));
        assert!(svg.contains(">i</text>"));
    }

    #[test]
    fn empty_array_renders() {
        let view = ArrayView::default();
        assert!(view.render_text().contains('\n'));
        assert!(view.render_svg().starts_with("<svg"));
    }
}
