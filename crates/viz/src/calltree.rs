//! The recursive-call tree (paper Fig. 8): one node per call, red while
//! live, gray after returning, with the return value on a back edge.

use crate::dot::Digraph;
use crate::svg::SvgDoc;
use std::fmt::Write as _;

/// One call node.
#[derive(Debug, Clone)]
pub struct CallNode {
    /// Unique id (creation order).
    pub uid: usize,
    /// Display label, e.g. `fact(3)` or argument values.
    pub label: String,
    /// Parent call's uid (`None` for the root call).
    pub parent: Option<usize>,
    /// Whether the call is still executing.
    pub active: bool,
    /// Rendered return value once the call finished.
    pub return_value: Option<String>,
}

/// The evolving call tree. Drive it from `track_function` pause reasons:
/// [`CallTree::enter`] on `FunctionCall`, [`CallTree::leave`] on
/// `FunctionReturn`.
#[derive(Debug, Clone, Default)]
pub struct CallTree {
    nodes: Vec<CallNode>,
    /// Stack of live call uids.
    live: Vec<usize>,
}

impl CallTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        CallTree::default()
    }

    /// Records a call; returns its uid.
    pub fn enter(&mut self, label: impl Into<String>) -> usize {
        let uid = self.nodes.len();
        self.nodes.push(CallNode {
            uid,
            label: label.into(),
            parent: self.live.last().copied(),
            active: true,
            return_value: None,
        });
        self.live.push(uid);
        uid
    }

    /// Records the innermost live call returning with `value`.
    pub fn leave(&mut self, value: impl Into<String>) {
        if let Some(uid) = self.live.pop() {
            let node = &mut self.nodes[uid];
            node.active = false;
            node.return_value = Some(value.into());
        }
    }

    /// The recorded nodes.
    pub fn nodes(&self) -> &[CallNode] {
        &self.nodes
    }

    /// Number of calls recorded.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no calls were recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Emits Graphviz DOT (red = live, gray = returned, dashed back edges
    /// carry return values), like the paper's Listing 6 tool.
    pub fn to_dot(&self, name: &str) -> String {
        let mut g = Digraph::new(name);
        g.attr("rankdir", "TB");
        for n in &self.nodes {
            let color = if n.active { "red" } else { "gray" };
            g.node(
                format!("n{}", n.uid),
                [
                    ("label", n.label.clone()),
                    ("color", color.to_owned()),
                    ("shape", "box".to_owned()),
                ],
            );
        }
        for n in &self.nodes {
            if let Some(p) = n.parent {
                g.edge(format!("n{p}"), format!("n{}", n.uid), [("dir", "forward")]);
                if let Some(rv) = &n.return_value {
                    g.edge(
                        format!("n{}", n.uid),
                        format!("n{p}"),
                        [
                            ("label", rv.clone()),
                            ("style", "dashed".to_owned()),
                            ("constraint", "false".to_owned()),
                        ],
                    );
                }
            }
        }
        g.render()
    }

    /// Depth of a node in the tree.
    fn depth(&self, uid: usize) -> usize {
        let mut d = 0;
        let mut cur = self.nodes[uid].parent;
        while let Some(p) = cur {
            d += 1;
            cur = self.nodes[p].parent;
        }
        d
    }

    /// Renders a layered SVG: depth = row, creation order = column.
    pub fn to_svg(&self) -> String {
        const W: f64 = 110.0;
        const H: f64 = 40.0;
        const GAPX: f64 = 16.0;
        const GAPY: f64 = 46.0;
        let mut doc = SvgDoc::new(300.0, 200.0);
        // Column = number of nodes already placed at any depth (in-order).
        let mut centers = vec![(0.0, 0.0); self.nodes.len()];
        for (col, n) in self.nodes.iter().enumerate() {
            let depth = self.depth(n.uid);
            let x = 20.0 + col as f64 * (W + GAPX);
            let y = 20.0 + depth as f64 * (H + GAPY);
            let (fill, stroke) = if n.active {
                ("#fdecec", "#c22")
            } else {
                ("#eeeeee", "#777")
            };
            doc.rect(x, y, W, H, fill, stroke);
            doc.text(
                x + W / 2.0,
                y + H / 2.0 + 4.0,
                11.0,
                "middle",
                "black",
                &n.label,
            );
            centers[n.uid] = (x + W / 2.0, y);
        }
        for n in &self.nodes {
            if let Some(p) = n.parent {
                let (cx, cy) = centers[n.uid];
                let (px, py) = centers[p];
                doc.arrow(px, py + H, cx, cy, "#555");
                if let Some(rv) = &n.return_value {
                    let midx = (px + cx) / 2.0;
                    let midy = (py + H + cy) / 2.0;
                    doc.text(midx + 8.0, midy, 10.0, "start", "#383", rv);
                }
            }
        }
        doc.finish()
    }

    /// Renders an indented text tree.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        fn rec(tree: &CallTree, uid: usize, indent: usize, out: &mut String) {
            let n = &tree.nodes[uid];
            let status = if n.active { "*" } else { " " };
            let rv = n
                .return_value
                .as_ref()
                .map(|v| format!(" -> {v}"))
                .unwrap_or_default();
            let _ = writeln!(out, "{}{status}{}{rv}", "  ".repeat(indent), n.label);
            for child in tree.nodes.iter().filter(|c| c.parent == Some(uid)) {
                rec(tree, child.uid, indent + 1, out);
            }
        }
        for root in self.nodes.iter().filter(|n| n.parent.is_none()) {
            rec(self, root.uid, 0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// fact(3) call shape.
    fn fact_tree() -> CallTree {
        let mut t = CallTree::new();
        t.enter("fact(3)");
        t.enter("fact(2)");
        t.enter("fact(1)");
        t.leave("1");
        t.leave("2");
        // fact(3) still live.
        t
    }

    #[test]
    fn enter_leave_maintains_structure() {
        let t = fact_tree();
        assert_eq!(t.len(), 3);
        assert_eq!(t.nodes()[1].parent, Some(0));
        assert_eq!(t.nodes()[2].parent, Some(1));
        assert!(t.nodes()[0].active);
        assert!(!t.nodes()[1].active);
        assert_eq!(t.nodes()[1].return_value.as_deref(), Some("2"));
    }

    #[test]
    fn dot_has_colors_and_back_edges() {
        let dot = fact_tree().to_dot("fact");
        assert!(dot.contains("color=\"red\""));
        assert!(dot.contains("color=\"gray\""));
        assert!(dot.contains("style=\"dashed\""));
        assert!(dot.contains("label=\"2\""));
        assert!(dot.contains("\"n0\" -> \"n1\""));
    }

    #[test]
    fn svg_places_children_lower() {
        let svg = fact_tree().to_svg();
        assert!(svg.contains("fact(3)"));
        assert!(svg.contains("fact(1)"));
        // Live node fill vs returned node fill.
        assert!(svg.contains("#fdecec"));
        assert!(svg.contains("#eeeeee"));
    }

    #[test]
    fn text_tree_indents() {
        let text = fact_tree().render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("fact(3)"));
        assert!(lines[1].starts_with("  "));
        assert!(lines[2].starts_with("    "));
        assert!(lines[2].contains("-> 1"));
    }

    #[test]
    fn sibling_calls_share_parent() {
        let mut t = CallTree::new();
        t.enter("fib(3)");
        t.enter("fib(2)");
        t.leave("1");
        t.enter("fib(1)");
        t.leave("1");
        t.leave("2");
        assert_eq!(t.nodes()[1].parent, Some(0));
        assert_eq!(t.nodes()[2].parent, Some(0));
        assert!(!t.is_empty());
    }
}
