//! Visualization primitives and diagram renderers for EasyTracker tools.
//!
//! The paper's evaluation (§III) builds four teaching tools whose
//! rendering needs are covered here, without external binaries:
//!
//! * [`svg`] — a small, dependency-free SVG document builder;
//! * [`dot`] — a Graphviz DOT emitter (for tools that prefer `dot`);
//! * [`stack`] — stack and stack-and-heap diagrams (paper Fig. 6a/6b/6c),
//!   with invalid pointers drawn as crosses and reference arrows resolved
//!   by address;
//! * [`mod@array`] — the array-invariant view of Fig. 1 (cells, index markers,
//!   highlighted sorted region);
//! * [`calltree`] — the recursive-call tree of Fig. 8 (live/returned
//!   nodes, return-value back edges), as DOT and as layered SVG;
//! * [`memview`] — the registers + raw memory viewer of Fig. 7;
//! * [`source`] — source listings with a current-line marker;
//! * [`flame`] — collapsed-stack (`.folded`) and flamegraph renderers
//!   over profile data;
//! * [`heatmap`] — per-line heatmap listings over profile data.
//!
//! Every renderer also offers a plain-text mode so tools can run in
//! terminals and tests can assert on output cheaply.

pub mod array;
pub mod calltree;
pub mod dot;
pub mod flame;
pub mod heatmap;
pub mod memview;
pub mod source;
pub mod stack;
pub mod svg;
