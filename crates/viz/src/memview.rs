//! The registers + raw memory viewer (paper Fig. 7): the CPU registers in
//! a table next to memory rendered as a one-dimensional array of words,
//! with the pc and sp highlighted.

use crate::svg::SvgDoc;
use state::Variable;
use std::fmt::Write as _;

/// Input to the register/memory view.
#[derive(Debug, Clone, Default)]
pub struct MemView {
    /// Register name/value pairs (from the low-level interface).
    pub registers: Vec<(String, i64)>,
    /// Memory words as `(address, value)` rows.
    pub words: Vec<(u64, u32)>,
    /// Addresses to highlight (e.g. sp target); drawn with accent border.
    pub highlights: Vec<u64>,
    /// Title.
    pub title: Option<String>,
}

impl MemView {
    /// Builds the register list from language-agnostic variables (the
    /// output of `LowLevel::registers`).
    pub fn from_registers(registers: &[Variable]) -> Self {
        let regs = registers
            .iter()
            .map(|v| {
                let n = match v.value().content() {
                    state::Content::Primitive(state::Prim::Int(n)) => *n,
                    _ => 0,
                };
                (v.name().to_owned(), n)
            })
            .collect();
        MemView {
            registers: regs,
            ..MemView::default()
        }
    }

    /// Adds memory rows from raw little-endian bytes starting at `base`.
    #[must_use]
    pub fn with_memory(mut self, base: u64, bytes: &[u8]) -> Self {
        for (i, chunk) in bytes.chunks(4).enumerate() {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            self.words
                .push((base + i as u64 * 4, u32::from_le_bytes(word)));
        }
        self
    }

    /// Adds an address highlight (builder style).
    #[must_use]
    pub fn with_highlight(mut self, addr: u64) -> Self {
        self.highlights.push(addr);
        self
    }

    /// Sets the title (builder style).
    #[must_use]
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Renders as plain text: registers in four columns, then memory rows.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "== {t} ==");
        }
        for row in self.registers.chunks(4) {
            let cells: Vec<String> = row
                .iter()
                .map(|(n, v)| format!("{n:>4} = {v:<10}"))
                .collect();
            let _ = writeln!(out, "{}", cells.join(" "));
        }
        if !self.words.is_empty() {
            let _ = writeln!(out, "memory:");
            for (addr, word) in &self.words {
                let marker = if self.highlights.contains(addr) {
                    " <--"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "  {addr:#08x}: {word:#010x} ({}){marker}",
                    *word as i32
                );
            }
        }
        out
    }

    /// Renders as SVG: registers table on the left, memory strip on the
    /// right.
    pub fn render_svg(&self) -> String {
        const ROW: f64 = 16.0;
        let mut doc = SvgDoc::new(560.0, 60.0);
        let mut y = 20.0;
        if let Some(t) = &self.title {
            doc.text(20.0, y, 13.0, "start", "black", t);
            y += 20.0;
        }
        let reg_top = y;
        for (i, (name, value)) in self.registers.iter().enumerate() {
            let ry = reg_top + i as f64 * ROW;
            doc.rect(20.0, ry - 11.0, 220.0, ROW, "#f7f7fb", "#99a");
            doc.text(26.0, ry, 10.0, "start", "#225", name);
            doc.text(90.0, ry, 10.0, "start", "black", &value.to_string());
            doc.text(
                170.0,
                ry,
                10.0,
                "start",
                "#777",
                &format!("{:#010x}", *value as u32),
            );
        }
        for (i, (addr, word)) in self.words.iter().enumerate() {
            let ry = reg_top + i as f64 * ROW;
            let stroke = if self.highlights.contains(addr) {
                "#c22"
            } else {
                "#9a9"
            };
            doc.rect(280.0, ry - 11.0, 250.0, ROW, "#f4faf4", stroke);
            doc.text(286.0, ry, 10.0, "start", "#252", &format!("{addr:#08x}"));
            doc.text(380.0, ry, 10.0, "start", "black", &format!("{word:#010x}"));
            doc.text(
                480.0,
                ry,
                10.0,
                "start",
                "#555",
                &(*word as i32).to_string(),
            );
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use state::{Location, Prim, Scope, Value};

    fn sample() -> MemView {
        MemView {
            registers: vec![
                ("zero".into(), 0),
                ("sp".into(), 0x10000),
                ("a0".into(), 42),
            ],
            ..MemView::default()
        }
        .with_memory(0x1000, &[1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff])
        .with_highlight(0x1004)
        .with_title("cpu state")
    }

    #[test]
    fn text_renders_registers_and_memory() {
        let text = sample().render_text();
        assert!(text.contains("sp = 65536"));
        assert!(text.contains("0x001000: 0x00000001 (1)"));
        assert!(text.contains("0x001004: 0xffffffff (-1) <--"));
    }

    #[test]
    fn svg_marks_highlights() {
        let svg = sample().render_svg();
        assert!(svg.contains("cpu state"));
        assert!(svg.contains("#c22"));
        assert!(svg.contains("0x001004"));
    }

    #[test]
    fn from_register_variables() {
        let regs = vec![Variable::new(
            "a0",
            Scope::Register,
            Value::primitive(Prim::Int(7), "u32").with_location(Location::Register),
        )];
        let view = MemView::from_registers(&regs);
        assert_eq!(view.registers, vec![("a0".into(), 7)]);
    }

    #[test]
    fn odd_byte_lengths_pad() {
        let view = MemView::default().with_memory(0, &[1, 2, 3, 4, 5]);
        assert_eq!(view.words.len(), 2);
        assert_eq!(view.words[1], (4, 5));
    }
}
