//! Quick quantitative-shape check: measures the paper's performance
//! claims with wall clocks (no criterion), printing a paper-vs-measured
//! table for EXPERIMENTS.md. Exit code is nonzero when a shape
//! expectation fails.
//!
//! Run with: `cargo run -p bench --release --bin claims`

use bench::{
    c_fib, c_heap, c_loop, c_tracker, py_fib, py_loop, py_tracker, run_resume, run_step_all,
    run_with_watch,
};
use easytracker::{PauseReason, Recording, Tracker};
use std::time::Instant;

fn time<F: FnMut()>(mut f: F) -> f64 {
    // Warm up once, then take the best of 3 (control for noise).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut failures = 0;
    let mut check = |name: &str, claim: &str, ratio: f64, expect_at_least: f64| {
        let ok = ratio >= expect_at_least;
        if !ok {
            failures += 1;
        }
        println!(
            "{:<44} {:<34} measured {ratio:6.1}x  (expect ≥{expect_at_least}x)  {}",
            name,
            claim,
            if ok { "OK" } else { "FAIL" }
        );
    };

    const ITERS: u32 = 150;

    // §II-C2: watchpoints slow the Python tracker down a lot.
    let py_src = py_loop(ITERS);
    let t_resume = time(|| {
        let mut t = py_tracker(&py_src);
        run_resume(&mut t);
        t.terminate();
    });
    let t_watch = time(|| {
        let mut t = py_tracker(&py_src);
        run_with_watch(&mut t, "acc");
        t.terminate();
    });
    check(
        "minipy: watchpoint vs plain resume",
        "\"slows the execution down a lot\"",
        t_watch / t_resume,
        1.5,
    );

    // Same shape for the C engine: store events + per-store checks.
    let c_src = c_loop(ITERS);
    let t_resume_c = time(|| {
        let mut t = c_tracker(&c_src);
        run_resume(&mut t);
        t.terminate();
    });
    let t_watch_c = time(|| {
        let mut t = c_tracker(&c_src);
        run_with_watch(&mut t, "acc");
        t.terminate();
    });
    check(
        "minic:  watchpoint vs plain resume",
        "watchpoints re-check per store",
        t_watch_c / t_resume_c,
        1.5,
    );

    // §V: control cost scales with control points — stepping every line
    // is much slower than coarse function tracking on recursion.
    let fibc = c_fib(12);
    let t_step = time(|| {
        let mut t = c_tracker(&fibc);
        run_step_all(&mut t);
        t.terminate();
    });
    let t_track = time(|| {
        let mut t = c_tracker(&fibc);
        t.track_function("fib", Some(2)).unwrap();
        t.start().unwrap();
        loop {
            if let PauseReason::Exited(_) = t.resume().unwrap() {
                break;
            }
        }
        t.terminate();
    });
    check(
        "minic:  step-all vs track(maxdepth=2)",
        "coarse control is much cheaper",
        t_step / t_track,
        2.0,
    );

    // In-process inspection (PyTracker snapshot) vs serialized MI
    // inspection — the motivation for the two implementations.
    let mut mi = c_tracker(&c_heap(128));
    mi.break_before_line(6).unwrap();
    mi.start().unwrap();
    while !matches!(mi.resume().unwrap(), PauseReason::Breakpoint { .. }) {}
    let t_mi = time(|| {
        let _ = mi.get_state().unwrap();
    });
    mi.terminate();
    let mut py = py_tracker(&bench::py_heap(128));
    py.break_before_line(4).unwrap();
    py.start().unwrap();
    while !matches!(py.resume().unwrap(), PauseReason::Breakpoint { .. }) {}
    let t_py = time(|| {
        let _ = py.get_state().unwrap();
    });
    py.terminate();
    check(
        "inspect: MI get_state vs in-process",
        "in-process inspection is cheaper",
        t_mi / t_py,
        1.0,
    );

    // Fig. 10: partial trace ~10x smaller.
    let mut t = py_tracker(&py_fib(9));
    let rec = Recording::capture(&mut t).unwrap();
    t.terminate();
    let full = pttrace::trace_from_recording(&rec);
    let partial = pttrace::trace_with_options(
        &rec,
        &pttrace::ExportOptions {
            only_functions: Some(vec!["<module>".into()]),
            ..Default::default()
        },
    );
    check(
        "fig10:  full vs partial PT trace size",
        "\"reduce the trace by a factor of 10\"",
        pttrace::trace_size(&full) as f64 / pttrace::trace_size(&partial) as f64,
        5.0,
    );

    println!();
    if failures == 0 {
        println!("all quantitative shapes hold");
    } else {
        println!("{failures} shape check(s) FAILED");
    }
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
