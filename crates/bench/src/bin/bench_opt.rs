//! Speedup bench for the observation-preserving bytecode optimizer:
//! the canonical tracked-fib workload executed to completion on a raw
//! VM with the tracker detached (steady-state dispatch cost, no MI
//! roundtrips), compiled at -O0 and at -O1.
//!
//! Each level runs `WARMUP + REPEATS` times round-robin; the *minimum*
//! wall time scores the speedup gate (the repeatable cost), and every
//! scored repeat lands in an [`obs::Histogram`] for the reported
//! p50/p95/p99. Optimization itself runs once, outside the timed
//! region — the gate measures execution, not compile time.
//!
//! Also sweeps the conformance seed mix through the optimizer and
//! reports the static op-count reduction plus a lockstep sanity check
//! (same output, same exit) per seed.
//!
//! Run with: `cargo run --release -p bench --bin bench_opt`
//! CI gate:  `... --bin bench_opt -- --check` exits nonzero when the
//! -O1 steady-state speedup on tracked-fib falls below 10%, or any
//! seed-mix program changes behaviour under optimization.

use obs::Histogram;
use serde_json::json;
use std::time::{Duration, Instant};

const WARMUP: u32 = 2;
const REPEATS: u32 = 9;
const FIB_N: u32 = 24;
const WORKLOAD: &str = "c_fib(24), raw VM run-to-completion (tracker detached)";
const SPEEDUP_FLOOR_PCT: f64 = 10.0;
const SEED_MIX: std::ops::Range<u64> = 1..9;

fn run_once(program: &minic::Program) -> (Duration, i64, u64) {
    let mut vm = minic::vm::Vm::new(program);
    let begin = Instant::now();
    let exit = vm.run_to_completion().expect("workload completes");
    (begin.elapsed(), exit, vm.ops_executed())
}

struct Measured {
    best: Duration,
    hist: Histogram,
    exit: i64,
    ops: u64,
}

/// Runs both levels round-robin so machine-load drift hits them equally.
fn measure(programs: &[&minic::Program; 2]) -> [Measured; 2] {
    let mut out = [(); 2].map(|()| Measured {
        best: Duration::MAX,
        hist: Histogram::new(),
        exit: 0,
        ops: 0,
    });
    for rep in 0..(WARMUP + REPEATS) {
        for (i, program) in programs.iter().enumerate() {
            let (elapsed, exit, ops) = run_once(program);
            if rep >= WARMUP {
                out[i].hist.record(elapsed.as_nanos() as u64);
                if elapsed < out[i].best {
                    out[i].best = elapsed;
                }
                out[i].exit = exit;
                out[i].ops = ops;
            }
        }
    }
    out
}

/// The conformance seed mix through the optimizer: static reduction
/// numbers plus a behaviour check (output + exit identical).
fn seed_mix(diverged: &mut Vec<String>) -> Vec<serde_json::Value> {
    let mut rows = Vec::new();
    for seed in SEED_MIX {
        let program = conformance::gen::gen_program(seed);
        let src = conformance::gen::render_c(&program);
        let compiled = minic::compile("gen.c", &src).expect("seed program compiles");
        let (optimized, report) =
            analysis::opt::optimize(&compiled, 1).expect("optimizer accepts seed program");

        let mut plain = minic::vm::Vm::new(&compiled);
        let plain_exit = plain.run_to_completion().expect("plain run");
        let mut opt = minic::vm::Vm::new(&optimized);
        let opt_exit = opt.run_to_completion().expect("optimized run");
        if plain_exit != opt_exit || plain.output() != opt.output() {
            diverged.push(format!(
                "seed {seed}: exit {plain_exit} vs {opt_exit}, output {:?} vs {:?}",
                plain.output(),
                opt.output()
            ));
        }
        rows.push(json!({
            "seed": seed,
            "ops_before": report.ops_before,
            "ops_after": report.ops_after,
            "executed_before": plain.ops_executed(),
            "executed_after": opt.ops_executed(),
        }));
    }
    rows
}

fn main() {
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => {
                eprintln!("bench_opt: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!("bench_opt: {WORKLOAD}");
    let src = bench::c_fib(FIB_N);
    let unopt = minic::compile("bench.c", &src).expect("workload compiles");
    let (opt, report) = analysis::opt::optimize(&unopt, 1).expect("optimizer accepts workload");

    let [m0, m1] = measure(&[&unopt, &opt]);
    assert_eq!(m0.exit, m1.exit, "optimized workload changed its answer");

    let speedup_pct = if m0.best.is_zero() {
        0.0
    } else {
        (1.0 - m1.best.as_secs_f64() / m0.best.as_secs_f64()) * 100.0
    };
    for (name, m) in [("-O0", &m0), ("-O1", &m1)] {
        let s = m.hist.stats();
        println!(
            "{name} min {:>9}us | p50 {:>9}us p95 {:>9}us p99 {:>9}us | {:>12} ops executed",
            m.best.as_micros(),
            s.p50 / 1_000,
            s.p95 / 1_000,
            s.p99 / 1_000,
            m.ops,
        );
    }
    println!(
        "steady-state speedup {speedup_pct:.2}% | static ops {} -> {} | \
         folded {} branches {} unreachable {} copies {} fused {}",
        report.ops_before,
        report.ops_after,
        report.folded,
        report.branches,
        report.unreachable,
        report.copies,
        report.fused,
    );

    let mut diverged = Vec::new();
    let mix = seed_mix(&mut diverged);
    for d in &diverged {
        eprintln!("bench_opt: seed-mix divergence: {d}");
    }

    let per_level = |m: &Measured| {
        let s = m.hist.stats();
        json!({
            "min_us": m.best.as_micros() as u64,
            "p50_us": s.p50 / 1_000,
            "p95_us": s.p95 / 1_000,
            "p99_us": s.p99 / 1_000,
            "ops_executed": m.ops,
        })
    };
    let doc = json!({
        "workload": WORKLOAD,
        "repeats": REPEATS as u64,
        "unoptimized": per_level(&m0),
        "optimized": per_level(&m1),
        "speedup_pct": format!("{speedup_pct:.2}"),
        "static_ops_before": report.ops_before,
        "static_ops_after": report.ops_after,
        "folded": report.folded,
        "branches_simplified": report.branches,
        "unreachable_removed": report.unreachable,
        "copies_propagated": report.copies,
        "fused": report.fused,
        "seed_mix": mix,
        "seed_mix_divergences": diverged.len(),
    });
    std::fs::write("BENCH_opt.json", format!("{doc}\n")).expect("write BENCH_opt.json");
    println!("wrote BENCH_opt.json");

    if check {
        let mut failed = false;
        if speedup_pct < SPEEDUP_FLOOR_PCT {
            eprintln!(
                "bench_opt: -O1 speedup {speedup_pct:.2}% is below the \
                 {SPEEDUP_FLOOR_PCT}% floor"
            );
            failed = true;
        }
        if !diverged.is_empty() {
            eprintln!(
                "bench_opt: {} seed-mix program(s) changed behaviour under -O1",
                diverged.len()
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("optimizer gate passed (speedup {speedup_pct:.2}% ≥ {SPEEDUP_FLOOR_PCT}%)");
    }
}
