//! Instrumentation-overhead bench for the telemetry plane: the paper's
//! canonical debugging session (track a recursive function, resume
//! across every call/return pause, inspect the state at each call) on a
//! fixed MiniC workload over a real `mi-server` child (falling back to
//! the in-process channel when the server binary is unavailable), in
//! three configurations:
//!
//! * `plain` — a bare registry, no sinks, no drains: the baseline;
//! * `obs` — an export ring attached, so every span is recorded: the
//!   "leave it on everywhere" configuration;
//! * `obs_drain` — additionally draining engine telemetry over
//!   `Command::Telemetry` every 32 pauses.
//!
//! Each configuration runs `WARMUP + REPEATS` times; the *minimum* wall
//! time is reported (the repeatable cost, insulated from scheduler
//! noise). Results go to `BENCH_obs.json`.
//!
//! Run with: `cargo run --release -p bench --bin bench_obs`
//! CI gate:  `... --bin bench_obs -- --check 5` exits nonzero when the
//! `obs` configuration costs more than 5% over `plain`.

use easytracker::{MiTracker, PauseReason, ProgramSpec, Supervision, Tracker};
use serde_json::json;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WARMUP: u32 = 1;
const REPEATS: u32 = 5;
const DRAIN_EVERY: u64 = 32;
const WORKLOAD: &str = "c_fib(13), track fib + inspect each call";

enum Config {
    Plain,
    Obs,
    ObsDrain,
}

fn run_once(server: Option<&std::path::Path>, cfg: &Config) -> (Duration, u64) {
    let registry = obs::Registry::new();
    if !matches!(cfg, Config::Plain) {
        registry.add_sink(Arc::new(obs::ExportSink::new(8192)));
    }
    let src = bench::c_fib(13);
    let spec = match server {
        Some(bin) => ProgramSpec::c("bench.c", &src).via_server(bin),
        None => ProgramSpec::c("bench.c", &src),
    };
    let mut t = MiTracker::load_spec(spec, registry, Supervision::default(), None)
        .expect("workload compiles");
    let begin = Instant::now();
    t.start().expect("start");
    t.track_function("fib", None).expect("track");
    let mut pauses = 0u64;
    loop {
        match t.resume().expect("resume") {
            PauseReason::Exited(_) => break,
            PauseReason::FunctionCall { .. } => {
                // Inspect at every call, like a visualization frontend.
                let state = t.get_state().expect("state");
                debug_assert_eq!(state.frame.name(), "fib");
                pauses += 1;
            }
            _ => pauses += 1,
        }
        if matches!(cfg, Config::ObsDrain) && pauses.is_multiple_of(DRAIN_EVERY) {
            t.drain_telemetry().expect("drain");
        }
    }
    if matches!(cfg, Config::ObsDrain) {
        t.drain_telemetry().expect("final drain");
    }
    let elapsed = begin.elapsed();
    t.terminate();
    (elapsed, pauses)
}

/// Runs all three configurations round-robin (so slow drift in machine
/// load hits each configuration equally) and keeps the per-config
/// minimum. Warmup rounds run but do not score.
fn measure(server: Option<&std::path::Path>) -> ([Duration; 3], u64) {
    let configs = [Config::Plain, Config::Obs, Config::ObsDrain];
    let mut best = [Duration::MAX; 3];
    let mut pauses = 0;
    for rep in 0..(WARMUP + REPEATS) {
        for (i, cfg) in configs.iter().enumerate() {
            let (elapsed, n) = run_once(server, cfg);
            pauses = n;
            if rep >= WARMUP && elapsed < best[i] {
                best[i] = elapsed;
            }
        }
    }
    (best, pauses)
}

fn overhead_pct(base: Duration, variant: Duration) -> f64 {
    if base.is_zero() {
        return 0.0;
    }
    (variant.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut check: Option<f64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                let pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--check takes a percentage");
                check = Some(pct);
            }
            other => {
                eprintln!("bench_obs: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let server = conformance::mi_server_bin();
    let deployment = if server.is_some() {
        "mi-server child process"
    } else {
        "in-process channel"
    };
    eprintln!("bench_obs: {WORKLOAD} over {deployment}");

    let ([plain, obs_on, obs_drain], steps) = measure(server.as_deref());

    let obs_pct = overhead_pct(plain, obs_on);
    let drain_pct = overhead_pct(plain, obs_drain);
    let doc = json!({
        "workload": WORKLOAD,
        "deployment": deployment,
        "pauses": steps,
        "repeats": REPEATS as u64,
        "drain_every": DRAIN_EVERY,
        "plain_us": plain.as_micros() as u64,
        "obs_us": obs_on.as_micros() as u64,
        "obs_drain_us": obs_drain.as_micros() as u64,
        "obs_overhead_pct": format!("{obs_pct:.2}"),
        "drain_overhead_pct": format!("{drain_pct:.2}"),
    });
    std::fs::write("BENCH_obs.json", format!("{doc}\n")).expect("write BENCH_obs.json");
    println!(
        "plain {:>9}us | obs {:>9}us ({obs_pct:+.2}%) | obs+drain {:>9}us ({drain_pct:+.2}%)",
        plain.as_micros(),
        obs_on.as_micros(),
        obs_drain.as_micros()
    );
    println!("wrote BENCH_obs.json");

    if let Some(budget) = check {
        if obs_pct > budget {
            eprintln!("bench_obs: instrumentation overhead {obs_pct:.2}% exceeds budget {budget}%");
            std::process::exit(1);
        }
        println!("instrumentation overhead {obs_pct:.2}% within the {budget}% budget");
    }
}
