//! Seek-scaling and compression bench for the omniscient trace store.
//!
//! Builds two synthetic recordings with the same state shape — one with
//! 10k pauses, one with 100k — and times uniformly random `state_at`
//! seeks against each. Because a seek is binary-search arithmetic to the
//! enclosing keyframe plus at most `keyframe_every - 1` delta replays,
//! its cost must not grow with recording length: the gate fails if the
//! 100k-pause p99 exceeds 10x the 10k-pause p99 (a linear scan would be
//! ~10x the *median*, far past the p99 ratio this allows).
//!
//! Also gates the columnar format's size: the store on disk must be
//! less than half the cost of the naive encoding the paper's workflow
//! implies (one serialized `ProgramState` JSON snapshot per pause).
//!
//! Each store runs `WARMUP + REPEATS` seek batches round-robin so
//! machine-load drift hits both equally; every scored seek lands in an
//! [`obs::Histogram`] for the reported p50/p95/p99.
//!
//! Run with: `cargo run --release -p bench --bin bench_trace`
//! CI gate:  `... --bin bench_trace -- --check` exits nonzero when seek
//! scaling or the compression floor is violated. Writes BENCH_trace.json.

use obs::Histogram;
use serde_json::json;
use state::{Frame, PauseReason, Prim, ProgramState, Scope, SourceLocation, Value, Variable};
use std::time::Instant;

const WARMUP: u32 = 2;
const REPEATS: u32 = 9;
const SEEKS_PER_BATCH: u32 = 1_000;
const SMALL_PAUSES: u64 = 10_000;
const BIG_PAUSES: u64 = 100_000;
const P99_RATIO_CEILING: f64 = 10.0;
const COMPRESSION_FLOOR: f64 = 2.0;

/// One pause of the synthetic workload: a `main` frame plus a shallow
/// call chain, a loop counter that changes every pause, an accumulator
/// that changes every third pause, and a global that changes rarely —
/// the mix the delta encoder sees from real MiniC runs.
fn mk_state(i: u64) -> ProgramState {
    let line = (i % 61 + 1) as u32;
    let mut main = Frame::new("main", 0, SourceLocation::new("bench.c", line));
    main.insert_variable(Variable::new(
        "i",
        Scope::Local,
        Value::primitive(Prim::Int(i as i64), "int"),
    ));
    main.insert_variable(Variable::new(
        "acc",
        Scope::Local,
        Value::primitive(Prim::Int((i / 3) as i64), "int"),
    ));
    let mut inner = main;
    for d in 1..=(i % 3) as u32 {
        let mut f = Frame::new(format!("f{d}"), d, SourceLocation::new("bench.c", line));
        f.insert_variable(Variable::new(
            "n",
            Scope::Local,
            Value::primitive(Prim::Int(i as i64 - i64::from(d)), "int"),
        ));
        f.set_parent(inner);
        inner = f;
    }
    let globals = vec![Variable::new(
        "epoch",
        Scope::Global,
        Value::primitive(Prim::Int((i / 1024) as i64), "int"),
    )];
    let reason = if i == 0 {
        PauseReason::Started
    } else {
        PauseReason::Step
    };
    ProgramState::new(inner, globals, reason)
}

/// Builds a store of `n` pauses and returns it with the byte cost of
/// the naive encoding (full JSON snapshot per pause) for the ratio.
fn build_store(n: u64) -> (trace::Store, u64) {
    let mut store = trace::Store::new(
        "bench.c",
        "int main() { /* synthetic */ }",
        trace::DEFAULT_KEYFRAME_EVERY,
    );
    let mut naive = 0u64;
    for i in 0..n {
        let st = mk_state(i);
        naive += serde_json::to_vec(&st).expect("state serializes").len() as u64;
        store.push(&st, if i % 7 == 0 { "tick;" } else { "" });
    }
    store.set_exit_code(Some(0));
    store.freeze();
    (store, naive)
}

/// Deterministic xorshift so both stores see the same seek mix.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

struct Measured {
    hist: Histogram,
}

fn measure(stores: &[&trace::Store; 2]) -> [Measured; 2] {
    let mut out = [(); 2].map(|()| Measured {
        hist: Histogram::new(),
    });
    let mut rng = Rng(0x5eed_7ace);
    for rep in 0..(WARMUP + REPEATS) {
        for (i, store) in stores.iter().enumerate() {
            for _ in 0..SEEKS_PER_BATCH {
                let target = rng.next() % store.len();
                let begin = Instant::now();
                let st = store.state_at(target).expect("seek lands");
                let ns = begin.elapsed().as_nanos() as u64;
                assert_eq!(st.frame.location().line(), (target % 61 + 1) as u32);
                if rep >= WARMUP {
                    out[i].hist.record(ns);
                }
            }
        }
    }
    out
}

fn main() {
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => {
                eprintln!("bench_trace: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "bench_trace: uniform random state_at over {SMALL_PAUSES}- and \
         {BIG_PAUSES}-pause stores (keyframe every {})",
        trace::DEFAULT_KEYFRAME_EVERY
    );
    let (small, small_naive) = build_store(SMALL_PAUSES);
    let (big, big_naive) = build_store(BIG_PAUSES);
    let small_disk = small.to_bytes().len() as u64;
    let big_disk = big.to_bytes().len() as u64;

    let [m_small, m_big] = measure(&[&small, &big]);
    let s_small = m_small.hist.stats();
    let s_big = m_big.hist.stats();
    for (name, pauses, s, disk, naive) in [
        ("10k ", SMALL_PAUSES, &s_small, small_disk, small_naive),
        ("100k", BIG_PAUSES, &s_big, big_disk, big_naive),
    ] {
        println!(
            "{name} ({pauses:>6} pauses) seek p50 {:>7}ns p95 {:>7}ns p99 {:>7}ns | \
             {disk:>9}B on disk vs {naive:>10}B naive ({:.1}x)",
            s.p50,
            s.p95,
            s.p99,
            naive as f64 / disk as f64,
        );
    }
    let ratio = if s_small.p99 == 0 {
        1.0
    } else {
        s_big.p99 as f64 / s_small.p99 as f64
    };
    let compression = big_naive as f64 / big_disk as f64;
    println!(
        "p99 scaling 100k/10k = {ratio:.2}x (ceiling {P99_RATIO_CEILING}x) | \
         compression {compression:.1}x (floor {COMPRESSION_FLOOR}x)"
    );

    let per_store = |pauses: u64, s: &obs::HistStats, disk: u64, naive: u64| {
        json!({
            "pauses": pauses,
            "seek_p50_ns": s.p50,
            "seek_p95_ns": s.p95,
            "seek_p99_ns": s.p99,
            "disk_bytes": disk,
            "naive_bytes": naive,
        })
    };
    let doc = json!({
        "workload": "uniform random state_at seeks, synthetic MiniC-shaped states",
        "keyframe_every": trace::DEFAULT_KEYFRAME_EVERY,
        "repeats": REPEATS as u64,
        "seeks_per_batch": SEEKS_PER_BATCH as u64,
        "small": per_store(SMALL_PAUSES, &s_small, small_disk, small_naive),
        "big": per_store(BIG_PAUSES, &s_big, big_disk, big_naive),
        "p99_ratio": format!("{ratio:.2}"),
        "p99_ratio_ceiling": P99_RATIO_CEILING,
        "compression_ratio": format!("{compression:.2}"),
        "compression_floor": COMPRESSION_FLOOR,
    });
    std::fs::write("BENCH_trace.json", format!("{doc}\n")).expect("write BENCH_trace.json");
    println!("wrote BENCH_trace.json");

    if check {
        let mut failed = false;
        if ratio > P99_RATIO_CEILING {
            eprintln!(
                "bench_trace: seek p99 grew {ratio:.2}x from 10k to 100k pauses \
                 (ceiling {P99_RATIO_CEILING}x) — seek is not sub-linear"
            );
            failed = true;
        }
        if compression < COMPRESSION_FLOOR {
            eprintln!(
                "bench_trace: compression {compression:.2}x is below the \
                 {COMPRESSION_FLOOR}x floor against naive full snapshots"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "trace gate passed (p99 ratio {ratio:.2}x ≤ {P99_RATIO_CEILING}x, \
             compression {compression:.1}x ≥ {COMPRESSION_FLOOR}x)"
        );
    }
}
