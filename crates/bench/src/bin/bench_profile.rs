//! Overhead bench for the in-engine profiling plane: the canonical
//! tracked-fib session (track a recursive function, resume across every
//! call/return pause, inspect the state at each call) over a real
//! `mi-server` child (falling back to the in-process channel when the
//! server binary is unavailable), in four configurations:
//!
//! * `plain`    — profiler never armed: the baseline;
//! * `disabled` — `SetProfile(Off)` issued before start, so the command
//!   path runs but every hook stays on the `None` fast path;
//! * `counting` — exact per-line/per-function counting armed;
//! * `sampling` — deterministic sampling armed (period 64).
//!
//! Each configuration runs `WARMUP + REPEATS` times round-robin; the
//! *minimum* wall time scores the overhead gates (the repeatable cost),
//! and every scored repeat also lands in an [`obs::Histogram`] so the
//! reported p50/p95/p99 come from the shared quantile implementation
//! rather than hand-rolled index math. The profile itself is drained
//! *outside* the timed region: the gates measure in-engine hook cost,
//! not the one extra drain roundtrip.
//!
//! Also profiles the conformance seed mix (counting mode over generated
//! MiniC programs) and reports its top-10 hot functions by self units —
//! the numbers quoted in `EXPERIMENTS.md`.
//!
//! Run with: `cargo run --release -p bench --bin bench_profile`
//! CI gate:  `... --bin bench_profile -- --check` exits nonzero when
//! `disabled` costs more than 2% over `plain`, `counting` more than
//! 15%, or counting and sampling disagree on the top-3 hot functions.

use easytracker::{MiTracker, PauseReason, ProgramSpec, Supervision, Tracker};
use obs::{Histogram, ProfileMode, ProfileReport};
use serde_json::json;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

const WARMUP: u32 = 2;
const REPEATS: u32 = 7;
const SAMPLE_PERIOD: u64 = 64;
const WORKLOAD: &str = "c_fib(13), track fib + inspect each call";
const DISABLED_BUDGET_PCT: f64 = 2.0;
const COUNTING_BUDGET_PCT: f64 = 15.0;
const SEED_MIX: std::ops::Range<u64> = 1..9;

#[derive(Clone, Copy, PartialEq)]
enum Config {
    Plain,
    Disabled,
    Counting,
    Sampling,
}

impl Config {
    const ALL: [Config; 4] = [
        Config::Plain,
        Config::Disabled,
        Config::Counting,
        Config::Sampling,
    ];

    fn name(self) -> &'static str {
        match self {
            Config::Plain => "plain",
            Config::Disabled => "disabled",
            Config::Counting => "counting",
            Config::Sampling => "sampling",
        }
    }
}

fn load(server: Option<&std::path::Path>, src: &str) -> MiTracker {
    let spec = match server {
        Some(bin) => ProgramSpec::c("bench.c", src).via_server(bin),
        None => ProgramSpec::c("bench.c", src),
    };
    MiTracker::load_spec(spec, obs::Registry::new(), Supervision::default(), None)
        .expect("workload compiles")
}

fn run_once(server: Option<&std::path::Path>, cfg: Config) -> (Duration, u64, ProfileReport) {
    let mut t = load(server, &bench::c_fib(13));
    match cfg {
        Config::Plain => {}
        Config::Disabled => t.set_profile(ProfileMode::Off, 0).expect("disarm"),
        Config::Counting => t.set_profile(ProfileMode::Counting, 0).expect("arm"),
        Config::Sampling => t
            .set_profile(ProfileMode::Sampling, SAMPLE_PERIOD)
            .expect("arm"),
    }
    let begin = Instant::now();
    t.start().expect("start");
    t.track_function("fib", None).expect("track");
    let mut pauses = 0u64;
    loop {
        match t.resume().expect("resume") {
            PauseReason::Exited(_) => break,
            PauseReason::FunctionCall { .. } => {
                // Inspect at every call, like a visualization frontend.
                let state = t.get_state().expect("state");
                debug_assert_eq!(state.frame.name(), "fib");
                pauses += 1;
            }
            _ => pauses += 1,
        }
    }
    let elapsed = begin.elapsed();
    let report = match cfg {
        Config::Counting | Config::Sampling => t.profile().expect("profile"),
        _ => ProfileReport::default(),
    };
    t.terminate();
    (elapsed, pauses, report)
}

struct Measured {
    best: Duration,
    hist: Histogram,
    report: ProfileReport,
}

/// Runs all four configurations round-robin (so slow drift in machine
/// load hits each configuration equally). Warmup rounds run but do not
/// score; every scored repeat is recorded.
fn measure(server: Option<&std::path::Path>) -> ([Measured; 4], u64) {
    let mut out = [(); 4].map(|()| Measured {
        best: Duration::MAX,
        hist: Histogram::new(),
        report: ProfileReport::default(),
    });
    let mut pauses = 0;
    for rep in 0..(WARMUP + REPEATS) {
        for (i, cfg) in Config::ALL.into_iter().enumerate() {
            let (elapsed, n, report) = run_once(server, cfg);
            pauses = n;
            if rep >= WARMUP {
                out[i].hist.record(elapsed.as_nanos() as u64);
                if elapsed < out[i].best {
                    out[i].best = elapsed;
                }
                out[i].report = report;
            }
        }
    }
    (out, pauses)
}

fn overhead_pct(base: Duration, variant: Duration) -> f64 {
    if base.is_zero() {
        return 0.0;
    }
    (variant.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
}

fn top_self_names(report: &ProfileReport, n: usize) -> Vec<String> {
    report
        .top_self(n)
        .iter()
        .map(|(name, _)| (*name).to_owned())
        .collect()
}

/// Profiles the conformance seed mix under counting mode and merges the
/// per-seed reports into one self-units ranking.
fn seed_mix_top10(server: Option<&std::path::Path>) -> Vec<(String, u64)> {
    let mut merged: BTreeMap<String, u64> = BTreeMap::new();
    for seed in SEED_MIX {
        let program = conformance::gen::gen_program(seed);
        let src = conformance::gen::render_c(&program);
        let mut t = load(server, &src);
        t.set_profile(ProfileMode::Counting, 0).expect("arm");
        t.start().expect("start");
        while t.resume().expect("resume").is_alive() {}
        let report = t.profile().expect("profile");
        t.terminate();
        for f in &report.functions {
            *merged.entry(format!("seed{seed}:{}", f.name)).or_default() += f.self_units;
        }
    }
    let mut ranked: Vec<(String, u64)> = merged.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(10);
    ranked
}

fn main() {
    let mut check = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => {
                eprintln!("bench_profile: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let server = conformance::mi_server_bin();
    let deployment = if server.is_some() {
        "mi-server child process"
    } else {
        "in-process channel"
    };
    eprintln!("bench_profile: {WORKLOAD} over {deployment}");

    let (measured, pauses) = measure(server.as_deref());
    let [plain, disabled, counting, sampling] = &measured;

    let disabled_pct = overhead_pct(plain.best, disabled.best);
    let counting_pct = overhead_pct(plain.best, counting.best);
    let sampling_pct = overhead_pct(plain.best, sampling.best);
    let top_counting = top_self_names(&counting.report, 3);
    let top_sampling = top_self_names(&sampling.report, 3);
    let rankings_agree = top_counting == top_sampling;

    let pcts = [0.0, disabled_pct, counting_pct, sampling_pct];
    for ((cfg, m), pct) in Config::ALL.into_iter().zip(&measured).zip(pcts) {
        let s = m.hist.stats();
        println!(
            "{:<9} min {:>9}us ({pct:+.2}%) | p50 {:>9}us p95 {:>9}us p99 {:>9}us",
            cfg.name(),
            m.best.as_micros(),
            s.p50 / 1_000,
            s.p95 / 1_000,
            s.p99 / 1_000,
        );
    }
    println!(
        "top-3 by self units — counting: {top_counting:?}, sampling: {top_sampling:?} ({})",
        if rankings_agree { "agree" } else { "disagree" }
    );

    let mix = seed_mix_top10(server.as_deref());
    println!("conformance seed mix, top-10 hot functions (self units):");
    for (name, units) in &mix {
        println!("  {name:<24} {units:>10}");
    }

    let per_config = |m: &Measured| {
        let s = m.hist.stats();
        json!({
            "min_us": m.best.as_micros() as u64,
            "p50_us": s.p50 / 1_000,
            "p95_us": s.p95 / 1_000,
            "p99_us": s.p99 / 1_000,
        })
    };
    let doc = json!({
        "workload": WORKLOAD,
        "deployment": deployment,
        "pauses": pauses,
        "repeats": REPEATS as u64,
        "sample_period": SAMPLE_PERIOD,
        "plain": per_config(plain),
        "disabled": per_config(disabled),
        "counting": per_config(counting),
        "sampling": per_config(sampling),
        "disabled_overhead_pct": format!("{disabled_pct:.2}"),
        "counting_overhead_pct": format!("{counting_pct:.2}"),
        "sampling_overhead_pct": format!("{sampling_pct:.2}"),
        "top3_counting": top_counting,
        "top3_sampling": top_sampling,
        "top3_agree": rankings_agree,
        "seed_mix_top10": mix
            .iter()
            .map(|(name, units)| json!({"function": name, "self_units": units}))
            .collect::<Vec<_>>(),
    });
    std::fs::write("BENCH_profile.json", format!("{doc}\n")).expect("write BENCH_profile.json");
    println!("wrote BENCH_profile.json");

    if check {
        let mut failed = false;
        if disabled_pct > DISABLED_BUDGET_PCT {
            eprintln!(
                "bench_profile: disabled-profiler overhead {disabled_pct:.2}% exceeds \
                 budget {DISABLED_BUDGET_PCT}%"
            );
            failed = true;
        }
        if counting_pct > COUNTING_BUDGET_PCT {
            eprintln!(
                "bench_profile: counting-profiler overhead {counting_pct:.2}% exceeds \
                 budget {COUNTING_BUDGET_PCT}%"
            );
            failed = true;
        }
        if !rankings_agree {
            eprintln!("bench_profile: counting and sampling disagree on the top-3 hot functions");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "profiler overhead within budget (disabled {disabled_pct:.2}% ≤ \
             {DISABLED_BUDGET_PCT}%, counting {counting_pct:.2}% ≤ {COUNTING_BUDGET_PCT}%)"
        );
    }
}
