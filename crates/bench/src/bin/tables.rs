//! Regenerates the paper's three qualitative comparison tables (Tables
//! I-III), with this reproduction's row produced by *probing the live
//! API* rather than asserting it: every ✓ in the EasyTracker rows is
//! backed by an actual run.
//!
//! Run with: `cargo run -p bench --bin tables`

use easytracker::{init_tracker, PauseReason, Recording, ReplayTracker, Tracker};

struct Probe {
    decoupled: bool,
    controls_execution: bool,
    online_visualization: bool,
    language_agnostic: bool,
    serializable_state: bool,
    watchpoints: bool,
    function_tracking: bool,
    trace_export: bool,
    high_level_api: bool,
}

/// Exercises the API to substantiate the EasyTracker row.
fn probe() -> Probe {
    const C: &str = "int f(int x) {\nreturn x + 1;\n}\nint main() {\nint a = f(1);\nreturn a;\n}";
    const PY: &str = "def f(x):\n    return x + 1\na = f(1)\nb = 0\n";

    // Language-agnostic: one controller closure over both trackers.
    let run = |file: &str, src: &str| -> (bool, bool, bool) {
        let mut t = init_tracker(file, src).expect("load");
        t.track_function("f", None).expect("track");
        t.watch("a").expect("watch");
        t.start().expect("start");
        let (mut saw_call, mut saw_ret, mut saw_watch) = (false, false, false);
        loop {
            match t.resume().expect("resume") {
                PauseReason::FunctionCall { .. } => saw_call = true,
                PauseReason::FunctionReturn { .. } => saw_ret = true,
                PauseReason::Watchpoint { .. } => saw_watch = true,
                PauseReason::Exited(_) => break,
                _ => {}
            }
        }
        t.terminate();
        (saw_call, saw_ret, saw_watch)
    };
    let (c_call, c_ret, c_watch) = run("t.c", C);
    let (p_call, p_ret, p_watch) = run("t.py", PY);

    // Serializable state: snapshot round-trips through JSON.
    let mut t = init_tracker("t.py", PY).expect("load");
    t.start().expect("start");
    let st = t.get_state().expect("state");
    let json = serde_json::to_string(&st).expect("serialize");
    let ok_serde = serde_json::from_str::<easytracker::ProgramState>(&json).is_ok();
    t.terminate();

    // Trace export + replay control.
    let mut t = init_tracker("t.py", PY).expect("load");
    let rec = Recording::capture(t.as_mut()).expect("capture");
    t.terminate();
    let pt = pttrace::trace_from_recording(&rec);
    let rec2 = pttrace::recording_from_trace(&pt, "t.py").expect("import");
    let mut replay = ReplayTracker::new(rec2);
    replay.start().expect("start");
    let replay_ok = replay.step().is_ok();

    Probe {
        decoupled: true, // tools in examples/, control in easytracker, viz in viz
        controls_execution: c_call && p_call,
        online_visualization: c_watch && p_watch, // hints/diagrams during the run
        language_agnostic: (c_call, c_ret) == (p_call, p_ret),
        serializable_state: ok_serde,
        watchpoints: c_watch && p_watch,
        function_tracking: c_ret && p_ret,
        trace_export: replay_ok,
        high_level_api: true, // the Tracker trait: ~20 methods, no debugger expertise
    }
}

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn main() {
    let p = probe();

    println!("Table I — program-visualization tool properties (paper §IV-A)");
    println!(
        "{:<22} {:^10} {:^9} {:^9} {:^10} {:^9}",
        "tool", "decoupled", "control", "online", "agnostic", "serial."
    );
    println!("{:-<75}", "");
    for (tool, d, c, o, a, s) in [
        ("JSaV / VisuAlgo", "no", "no", "yes", "no", "no"),
        ("OGRE / PVC.js", "yes", "no", "yes", "no", "no"),
        ("Jeliot / SeeC", "trace", "no", "no", "no", "yes"),
        ("C Tutor (Valgrind)", "trace", "no", "no", "no", "yes"),
        ("Valgrind/DynamoRIO", "yes", "no", "yes", "no", "no"),
        ("debugger MIs", "yes", "yes", "yes", "no", "partly"),
    ] {
        println!("{tool:<22} {d:^10} {c:^9} {o:^9} {a:^10} {s:^9}");
    }
    println!(
        "{:<22} {:^10} {:^9} {:^9} {:^10} {:^9}   (probed live)",
        "EasyTracker (this)",
        mark(p.decoupled),
        mark(p.controls_execution),
        mark(p.online_visualization),
        mark(p.language_agnostic),
        mark(p.serializable_state),
    );

    println!();
    println!("Table II — debugger machine interfaces (paper §IV-B)");
    println!(
        "{:<22} {:<12} {:<22} {:<10}",
        "interface", "level", "languages", "teaching-ready"
    );
    println!("{:-<70}", "");
    for (iface, level, langs, ready) in [
        ("GDB/MI", "low", "compiled", "no"),
        ("DAP", "low/medium", "per-adapter", "no"),
        ("pdb/bdb", "medium", "Python only", "no"),
        ("JDWP", "low", "JVM only", "no"),
    ] {
        println!("{iface:<22} {level:<12} {langs:<22} {ready:<10}");
    }
    println!(
        "{:<22} {:<12} {:<22} {:<10}",
        "EasyTracker (this)",
        "high",
        "MiniC, MiniPy, RV32I",
        mark(p.high_level_api),
    );

    println!();
    println!("Table III — teaching-requirement coverage (paper §IV-C)");
    println!("{:<34} {:<12}", "requirement", "supported");
    println!("{:-<48}", "");
    for (req, ok) in [
        (
            "pause at line / function / change",
            p.controls_execution && p.watchpoints,
        ),
        ("pause before function returns", p.function_tracking),
        ("depth-filtered control (maxdepth)", p.controls_execution),
        ("walk stack + globals + heap", p.serializable_state),
        ("same tool across languages", p.language_agnostic),
        ("generate/consume traces (PT)", p.trace_export),
        ("custom visualization (not a GUI)", p.decoupled),
        ("online interaction (hints/games)", p.online_visualization),
    ] {
        println!("{req:<34} {:<12}", mark(ok));
    }

    let all = p.decoupled
        && p.controls_execution
        && p.online_visualization
        && p.language_agnostic
        && p.serializable_state
        && p.watchpoints
        && p.function_tracking
        && p.trace_export
        && p.high_level_api;
    println!();
    println!(
        "probe verdict: {}",
        if all {
            "all EasyTracker properties verified against the live API"
        } else {
            "SOME PROPERTIES FAILED — see the marks above"
        }
    );
    std::process::exit(if all { 0 } else { 1 });
}
