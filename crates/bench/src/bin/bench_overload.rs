//! Overload bench: innocent pause latency under adversarial co-tenants.
//!
//! The governance question [`bench_sessions`] cannot answer: what does
//! one classroom tenant pay when its neighbours are hostile? This bench
//! opens a pool of innocent step/inspect sessions in ONE session host
//! and, for the whole measured phase, keeps a fleet of abuser threads
//! hammering the same host — each abuser runs the hot-loop program under
//! a step budget, takes its typed `ResourceExhausted`, and immediately
//! re-opens to keep the pressure constant. Fuel-sliced scheduling is
//! what keeps the innocents responsive; this measures by how much.
//!
//! Reported (stdout + `BENCH_overload.json`):
//!
//! * innocent p50/p95/p99 pause latency under abuse;
//! * abuser exhaustion cycles, all of which must be *typed* — one
//!   untyped abuser failure fails the bench;
//! * command throughput of the innocent pool.
//!
//! Abuser trackers write their post-mortem flight dumps to
//! `flight-dumps/` so CI can archive them next to the JSON.
//!
//! Run with: `cargo run --release -p bench --bin bench_overload`
//! CI gate:  `... --bin bench_overload -- --sessions 24 --check 500`
//! exits nonzero when innocent p99 pause latency exceeds 500ms, or when
//! any abuser was stopped by anything other than a typed verdict.

use easytracker::{MiTracker, PauseReason, ProgramSpec, Supervision, Tracker, TrackerError};
use mi::{HostHandle, SessionHost};
use obs::Histogram;
use serde_json::json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A loop no step budget used here lets finish.
const HOT_PROG: &str = "int main() {\n\
                        int i = 0;\n\
                        while (i < 2000000000) {\n\
                        i = i + 1;\n\
                        }\n\
                        return i;\n\
                        }\n";

/// Steps each abuser incarnation burns before its typed stop. Big
/// enough to span many preemption slices, small enough that abuse
/// cycles (exhaust → re-open) recur throughout the measured phase.
const ABUSE_BUDGET: u64 = 2_000_000;

/// One innocent session: step through a generated program, inspect
/// every 4th pause — the [`bench_sessions`] step/inspect script.
struct Innocent {
    tracker: MiTracker,
    ops_left: u32,
    step: u64,
    exited: bool,
}

impl Innocent {
    fn open(host: &HostHandle, index: usize, ops: u32) -> Self {
        let program = conformance::gen::gen_program(0x10ad + (index % 8) as u64);
        let source = conformance::gen::render_c(&program);
        let spec = ProgramSpec::c(&format!("gen{}.c", index % 8), &source).via_host(host);
        let tracker =
            MiTracker::load_spec(spec, obs::Registry::new(), Supervision::default(), None)
                .expect("workload compiles");
        Innocent {
            tracker,
            ops_left: ops,
            step: 0,
            exited: false,
        }
    }

    fn begin(&mut self, hist: &mut Histogram) {
        let t0 = Instant::now();
        let reason = self.tracker.start().expect("start");
        hist.record(t0.elapsed().as_nanos() as u64);
        if matches!(reason, PauseReason::Exited(_)) {
            self.exited = true;
        }
    }

    fn advance(&mut self, hist: &mut Histogram, commands: &mut u64) -> bool {
        if self.exited || self.ops_left == 0 {
            return false;
        }
        self.ops_left -= 1;
        self.step += 1;
        *commands += 1;
        let t0 = Instant::now();
        let reason = self.tracker.step().expect("step under abuse");
        hist.record(t0.elapsed().as_nanos() as u64);
        if matches!(reason, PauseReason::Exited(_)) {
            self.exited = true;
            return false;
        }
        if self.step.is_multiple_of(4) {
            *commands += 1;
            let state = self.tracker.get_state().expect("inspect under abuse");
            std::hint::black_box(state.frame.name());
        }
        true
    }
}

struct DriveResult {
    hist: Histogram,
    commands: u64,
}

fn drive(mut chunk: Vec<Innocent>) -> DriveResult {
    let mut hist = Histogram::new();
    let mut commands = 0u64;
    for s in &mut chunk {
        commands += 1;
        s.begin(&mut hist);
    }
    let mut live = true;
    while live {
        live = false;
        for s in &mut chunk {
            if s.advance(&mut hist, &mut commands) {
                live = true;
            }
        }
    }
    for s in &mut chunk {
        s.tracker.terminate();
    }
    DriveResult { hist, commands }
}

/// One abuser thread: hot loop under a step budget, typed exhaustion,
/// re-open, repeat until the innocents are done. Returns when `done`.
fn abuse(host: &HostHandle, done: &AtomicBool, exhaustions: &AtomicU64, untyped: &AtomicU64) {
    while !done.load(Ordering::Relaxed) {
        let spec = ProgramSpec::c("hot.c", HOT_PROG).via_host(host);
        let mut t =
            match MiTracker::load_spec(spec, obs::Registry::new(), Supervision::default(), None) {
                Ok(t) => t,
                Err(_) => {
                    untyped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            };
        t.set_dump_dir("flight-dumps");
        if t.set_limits(Some(ABUSE_BUDGET), None, None, None).is_err() {
            untyped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let _ = t.start();
        match t.resume() {
            Err(TrackerError::ResourceExhausted { .. }) => {
                exhaustions.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) | Err(_) => {
                // A hot loop must not pause, exit, or fail untyped
                // inside its budget.
                untyped.fetch_add(1, Ordering::Relaxed);
            }
        }
        t.terminate();
    }
}

fn main() {
    let mut sessions = 24usize;
    let mut abusers = 4usize;
    let mut workers = 4usize;
    let mut drivers = 4usize;
    let mut ops = 40u32;
    let mut check: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{what} takes a number"))
        };
        match arg.as_str() {
            "--sessions" => sessions = num("--sessions") as usize,
            "--abusers" => abusers = num("--abusers") as usize,
            "--workers" => workers = num("--workers") as usize,
            "--drivers" => drivers = num("--drivers") as usize,
            "--ops" => ops = num("--ops") as u32,
            "--check" => check = Some(num("--check")),
            other => {
                eprintln!("bench_overload: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    drivers = drivers.clamp(1, sessions.max(1));
    std::fs::create_dir_all("flight-dumps").expect("flight-dumps dir");

    let server = conformance::mi_server_bin();
    let (host, deployment, _local) = match &server {
        Some(bin) => (
            HostHandle::spawn_process(bin, workers).expect("spawn host"),
            "mi-server --host child process",
            None,
        ),
        None => {
            let local = SessionHost::new(workers);
            (
                HostHandle::connect_in_process(&local),
                "in-process host",
                Some(local),
            )
        }
    };
    eprintln!(
        "bench_overload: {sessions} innocents x {ops} ops vs {abusers} abusers, \
         {workers} host workers, {drivers} drivers, over {deployment}"
    );

    let mut all: Vec<Innocent> = (0..sessions)
        .map(|i| Innocent::open(&host, i, ops))
        .collect();
    let mut chunks: Vec<Vec<Innocent>> = Vec::new();
    for _ in 0..drivers {
        chunks.push(Vec::new());
    }
    for (i, s) in all.drain(..).enumerate() {
        chunks[i % drivers].push(s);
    }

    let done = AtomicBool::new(false);
    let exhaustions = AtomicU64::new(0);
    let untyped = AtomicU64::new(0);
    let results: Mutex<Vec<DriveResult>> = Mutex::new(Vec::new());
    let drive_begin = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..abusers {
            scope.spawn(|| abuse(&host, &done, &exhaustions, &untyped));
        }
        for chunk in chunks {
            scope.spawn(|| {
                let r = drive(chunk);
                results.lock().expect("results").push(r);
            });
        }
        // Scope waits for the innocents via the results below; the
        // abusers loop until told the measured phase is over.
        scope.spawn(|| {
            loop {
                let finished = results.lock().expect("results").len();
                if finished >= drivers {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            done.store(true, Ordering::Relaxed);
        });
    });
    let drive_elapsed = drive_begin.elapsed();
    let exhaustions = exhaustions.load(Ordering::Relaxed);
    let untyped = untyped.load(Ordering::Relaxed);

    let mut pause = Histogram::new();
    let mut commands = 0u64;
    for r in results.into_inner().expect("results") {
        pause.merge(&r.hist);
        commands += r.commands;
    }
    let p50_us = pause.quantile(0.50) / 1_000;
    let p95_us = pause.quantile(0.95) / 1_000;
    let p99_us = pause.quantile(0.99) / 1_000;
    let throughput = commands as f64 / drive_elapsed.as_secs_f64();

    let doc = json!({
        "workload": "innocent step/inspect pool vs hot-loop abuser fleet",
        "deployment": deployment,
        "innocent_sessions": sessions,
        "ops_per_session": ops,
        "abuser_threads": abusers,
        "abuse_budget_steps": ABUSE_BUDGET,
        "host_workers": workers,
        "driver_threads": drivers,
        "drive_ms": drive_elapsed.as_millis() as u64,
        "commands": commands,
        "commands_per_sec": format!("{throughput:.0}"),
        "abuser_exhaustions_typed": exhaustions,
        "abuser_failures_untyped": untyped,
        "pause_count": pause.count(),
        "pause_p50_us": p50_us,
        "pause_p95_us": p95_us,
        "pause_p99_us": p99_us,
        "pause_max_us": pause.max() / 1_000,
    });
    std::fs::write("BENCH_overload.json", format!("{doc}\n")).expect("write BENCH_overload.json");
    println!(
        "{sessions} innocents vs {abusers} abusers | pause p50 {p50_us}us p95 {p95_us}us \
         p99 {p99_us}us | {throughput:.0} cmd/s | {exhaustions} typed exhaustions"
    );
    println!("wrote BENCH_overload.json");

    if untyped > 0 {
        eprintln!("bench_overload: {untyped} abuser(s) stopped without a typed verdict");
        std::process::exit(1);
    }
    if let Some(budget_ms) = check {
        if exhaustions == 0 {
            eprintln!("bench_overload: the abusers never tripped a budget — no overload measured");
            std::process::exit(1);
        }
        let p99_ms = p99_us / 1_000;
        if p99_ms > budget_ms {
            eprintln!(
                "bench_overload: innocent p99 pause latency {p99_ms}ms exceeds the \
                 {budget_ms}ms budget"
            );
            std::process::exit(1);
        }
        println!("innocent p99 pause latency {p99_ms}ms within the {budget_ms}ms budget");
    }
}
