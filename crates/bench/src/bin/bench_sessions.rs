//! Multi-session load bench: hundreds-to-thousands of concurrent
//! supervised sessions through ONE `mi-server --host` process.
//!
//! Each session is a full [`MiTracker`] (supervision, journal, flight
//! recorder) deployed via [`ProgramSpec::via_host`], driven through a
//! realistic teaching-tool script: a mix of stepping, state inspection,
//! and breakpoint/function-tracking work, over programs produced by the
//! conformance generators plus the fixed fib workload. A small pool of
//! driver threads advances its sessions round-robin, one command per
//! pass — so at any instant the host holds *all* sessions open (mostly
//! parked) while a bounded number of commands are in flight, exactly
//! the shape of a classroom of debugger frontends sharing one backend.
//!
//! Reported (to stdout and `BENCH_sessions.json`):
//!
//! * p50/p95/p99 pause latency (control commands: start/step/resume),
//!   via [`obs::Histogram::quantile`] over per-driver histograms merged
//!   at the end;
//! * command throughput (all commands / drive wall time);
//! * sessions per host worker core.
//!
//! Run with: `cargo run --release -p bench --bin bench_sessions`
//! CI gate:  `... --bin bench_sessions -- --sessions 64 --check 500`
//! exits nonzero when p99 pause latency exceeds 500ms.

use easytracker::{MiTracker, PauseReason, ProgramSpec, Supervision, Tracker};
use mi::{HostHandle, SessionHost};
use obs::Histogram;
use serde_json::json;
use std::sync::Mutex;
use std::time::Instant;

/// One session's script kind: the step/inspect/breakpoint mixes the
/// conformance suite drives, assigned round-robin across sessions.
enum Script {
    /// Step through a generated program, inspecting every 4th pause.
    StepInspect,
    /// Line breakpoint + resume-to-pause + inspect at each hit.
    Breakpoint,
    /// Track a recursive function, inspect the frame at each call.
    TrackCalls,
}

/// One live session under load: its tracker, its script, and how many
/// commands it has left. Done sessions stay open (parked in the host)
/// until the measured phase ends — the point is concurrent *sessions*,
/// not concurrent commands.
struct LoadSession {
    tracker: MiTracker,
    script: Script,
    ops_left: u32,
    step: u64,
    exited: bool,
}

impl LoadSession {
    fn open(host: &HostHandle, index: usize, ops: u32) -> Self {
        let script = match index % 3 {
            0 => Script::StepInspect,
            1 => Script::Breakpoint,
            _ => Script::TrackCalls,
        };
        let (file, source) = match script {
            // Generated programs give the stepper mix real diversity;
            // a handful of seeds is plenty (the host compiles each).
            Script::StepInspect => {
                let program = conformance::gen::gen_program(0x5e55 + (index % 8) as u64);
                (
                    format!("gen{}.c", index % 8),
                    conformance::gen::render_c(&program),
                )
            }
            Script::Breakpoint | Script::TrackCalls => ("fib.c".to_owned(), bench::c_fib(6)),
        };
        let spec = ProgramSpec::c(&file, &source).via_host(host);
        let tracker =
            MiTracker::load_spec(spec, obs::Registry::new(), Supervision::default(), None)
                .expect("workload compiles");
        LoadSession {
            tracker,
            script,
            ops_left: ops,
            step: 0,
            exited: false,
        }
    }

    /// Arms the script's control points and starts the inferior. Pause
    /// latencies land in `hist` (nanoseconds).
    fn begin(&mut self, hist: &mut Histogram) {
        match self.script {
            Script::StepInspect => {}
            Script::Breakpoint => {
                self.tracker.break_before_func("fib", None).expect("break");
            }
            Script::TrackCalls => {
                self.tracker.track_function("fib", None).expect("track");
            }
        }
        let t0 = Instant::now();
        let reason = self.tracker.start().expect("start");
        hist.record(t0.elapsed().as_nanos() as u64);
        if matches!(reason, PauseReason::Exited(_)) {
            self.exited = true;
        }
    }

    /// Advances the session by one command; returns false once the
    /// script is exhausted or the inferior exited. Control-command
    /// latency goes to `hist`; inspection commands count toward
    /// throughput but not pause latency.
    fn advance(&mut self, hist: &mut Histogram, commands: &mut u64) -> bool {
        if self.exited || self.ops_left == 0 {
            return false;
        }
        self.ops_left -= 1;
        self.step += 1;
        *commands += 1;
        let inspect = self.step.is_multiple_of(4);
        let t0 = Instant::now();
        let reason = match self.script {
            Script::StepInspect => self.tracker.step(),
            Script::Breakpoint | Script::TrackCalls => self.tracker.resume(),
        }
        .expect("control command");
        hist.record(t0.elapsed().as_nanos() as u64);
        if matches!(reason, PauseReason::Exited(_)) {
            self.exited = true;
            return false;
        }
        if inspect {
            *commands += 1;
            let state = self.tracker.get_state().expect("inspect");
            std::hint::black_box(state.frame.name());
        }
        true
    }
}

struct DriveResult {
    hist: Histogram,
    commands: u64,
}

/// Drives `chunk` round-robin until every session's script is done.
fn drive(mut chunk: Vec<LoadSession>) -> DriveResult {
    let mut hist = Histogram::new();
    let mut commands = 0u64;
    for s in &mut chunk {
        commands += 1;
        s.begin(&mut hist);
    }
    let mut live = true;
    while live {
        live = false;
        for s in &mut chunk {
            if s.advance(&mut hist, &mut commands) {
                live = true;
            }
        }
    }
    // Scripts are done, sessions stay open: close them only after the
    // measured phase (the caller terminates via drop order below).
    for s in &mut chunk {
        s.tracker.terminate();
    }
    DriveResult { hist, commands }
}

fn main() {
    let mut sessions = 1000usize;
    let mut workers = 4usize;
    let mut drivers = 8usize;
    let mut ops = 12u32;
    let mut check: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{what} takes a number"))
        };
        match arg.as_str() {
            "--sessions" => sessions = num("--sessions") as usize,
            "--workers" => workers = num("--workers") as usize,
            "--drivers" => drivers = num("--drivers") as usize,
            "--ops" => ops = num("--ops") as u32,
            "--check" => check = Some(num("--check")),
            other => {
                eprintln!("bench_sessions: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    drivers = drivers.clamp(1, sessions.max(1));

    // One host process for everything; in-process host as the fallback
    // so the bench still runs where the server binary is not built.
    let server = conformance::mi_server_bin();
    let (host, deployment, _local) = match &server {
        Some(bin) => (
            HostHandle::spawn_process(bin, workers).expect("spawn host"),
            "mi-server --host child process",
            None,
        ),
        None => {
            let local = SessionHost::new(workers);
            (
                HostHandle::connect_in_process(&local),
                "in-process host",
                Some(local),
            )
        }
    };
    eprintln!(
        "bench_sessions: {sessions} sessions x {ops} ops, {workers} host workers, \
         {drivers} drivers, over {deployment}"
    );

    // Phase 1: open every session (compile + session-table insert).
    let open_begin = Instant::now();
    let mut all: Vec<LoadSession> = (0..sessions)
        .map(|i| LoadSession::open(&host, i, ops))
        .collect();
    let open_elapsed = open_begin.elapsed();
    eprintln!(
        "bench_sessions: {sessions} sessions open in {}ms",
        open_elapsed.as_millis()
    );

    // Phase 2: drive them all concurrently from the driver pool.
    let mut chunks: Vec<Vec<LoadSession>> = Vec::new();
    for _ in 0..drivers {
        chunks.push(Vec::new());
    }
    for (i, s) in all.drain(..).enumerate() {
        chunks[i % drivers].push(s);
    }
    let results: Mutex<Vec<DriveResult>> = Mutex::new(Vec::new());
    let drive_begin = Instant::now();
    std::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(|| {
                let r = drive(chunk);
                results.lock().expect("results").push(r);
            });
        }
    });
    let drive_elapsed = drive_begin.elapsed();

    let mut pause = Histogram::new();
    let mut commands = 0u64;
    for r in results.into_inner().expect("results") {
        pause.merge(&r.hist);
        commands += r.commands;
    }
    let p50_us = pause.quantile(0.50) / 1_000;
    let p95_us = pause.quantile(0.95) / 1_000;
    let p99_us = pause.quantile(0.99) / 1_000;
    let throughput = commands as f64 / drive_elapsed.as_secs_f64();
    let sessions_per_core = sessions as f64 / workers as f64;

    let doc = json!({
        "workload": "step/inspect/breakpoint teaching-tool mix (conformance-generated + fib)",
        "deployment": deployment,
        "sessions": sessions,
        "ops_per_session": ops,
        "host_workers": workers,
        "driver_threads": drivers,
        "open_ms": open_elapsed.as_millis() as u64,
        "drive_ms": drive_elapsed.as_millis() as u64,
        "commands": commands,
        "commands_per_sec": format!("{throughput:.0}"),
        "pause_count": pause.count(),
        "pause_p50_us": p50_us,
        "pause_p95_us": p95_us,
        "pause_p99_us": p99_us,
        "pause_max_us": pause.max() / 1_000,
        "sessions_per_core": format!("{sessions_per_core:.1}"),
    });
    std::fs::write("BENCH_sessions.json", format!("{doc}\n")).expect("write BENCH_sessions.json");
    println!(
        "{sessions} sessions | pause p50 {p50_us}us p95 {p95_us}us p99 {p99_us}us | \
         {throughput:.0} cmd/s | {sessions_per_core:.1} sessions/core"
    );
    println!("wrote BENCH_sessions.json");

    if let Some(budget_ms) = check {
        let p99_ms = p99_us / 1_000;
        if p99_ms > budget_ms {
            eprintln!(
                "bench_sessions: p99 pause latency {p99_ms}ms exceeds the {budget_ms}ms budget"
            );
            std::process::exit(1);
        }
        println!("p99 pause latency {p99_ms}ms within the {budget_ms}ms budget");
    }
}
