//! Shared workload generators for the benchmark harness.
//!
//! Each generator produces equivalent programs for the languages under
//! test, parameterized by size, so benches sweep comparable work across
//! the MiniC (machine-interface) tracker and the MiniPy (thread-based)
//! tracker.

use easytracker::{MiTracker, PauseReason, PyTracker, Tracker};

/// A MiniC counting loop with `iters` iterations.
pub fn c_loop(iters: u32) -> String {
    format!(
        "int main() {{\nint acc = 0;\nfor (int i = 0; i < {iters}; i++) {{\nacc = acc + i;\n}}\nreturn acc % 97;\n}}"
    )
}

/// The MiniPy equivalent of [`c_loop`].
pub fn py_loop(iters: u32) -> String {
    format!("acc = 0\nfor i in range({iters}):\n    acc = acc + i\nr = acc % 97\n")
}

/// A MiniC recursive Fibonacci program.
pub fn c_fib(n: u32) -> String {
    format!(
        "int fib(int n) {{\nif (n < 2) {{ return n; }}\nreturn fib(n - 1) + fib(n - 2);\n}}\nint main() {{\nreturn fib({n});\n}}"
    )
}

/// The MiniPy equivalent of [`c_fib`].
pub fn py_fib(n: u32) -> String {
    format!(
        "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\nr = fib({n})\n"
    )
}

/// A MiniC program that pauses (via a line breakpoint target) at call
/// depth `depth`, for inspection-scaling benches.
pub fn c_deep(depth: u32) -> String {
    format!(
        "int down(int n) {{\nint local = n * 2;\nif (n == 0) {{ return local; }}\nreturn down(n - 1);\n}}\nint main() {{\nreturn down({depth});\n}}"
    )
}

/// The MiniPy equivalent of [`c_deep`].
pub fn py_deep(depth: u32) -> String {
    format!(
        "def down(n):\n    local = n * 2\n    if n == 0:\n        return local\n    return down(n - 1)\nr = down({depth})\n"
    )
}

/// A MiniC program holding a heap array of `n` elements at its last line.
pub fn c_heap(n: u32) -> String {
    format!(
        "int main() {{\nint* a = malloc({n} * sizeof(int));\nfor (int i = 0; i < {n}; i++) {{\na[i] = i;\n}}\nint done = 1;\nfree(a);\nreturn done;\n}}"
    )
}

/// The MiniPy equivalent of [`c_heap`].
pub fn py_heap(n: u32) -> String {
    format!("a = []\nfor i in range({n}):\n    a.append(i)\ndone = 1\n")
}

/// Runs a tracker to completion with `resume` (no control points).
pub fn run_resume(tracker: &mut dyn Tracker) {
    tracker.start().expect("start");
    loop {
        if let PauseReason::Exited(_) = tracker.resume().expect("resume") {
            return;
        }
    }
}

/// Runs a tracker to completion by stepping every line.
pub fn run_step_all(tracker: &mut dyn Tracker) -> u64 {
    tracker.start().expect("start");
    let mut steps = 0;
    loop {
        if let PauseReason::Exited(_) = tracker.step().expect("step") {
            return steps;
        }
        steps += 1;
    }
}

/// Runs a tracker to completion with one watchpoint set.
pub fn run_with_watch(tracker: &mut dyn Tracker, variable: &str) -> u64 {
    tracker.start().expect("start");
    tracker.watch(variable).expect("watch");
    let mut hits = 0;
    loop {
        match tracker.resume().expect("resume") {
            PauseReason::Exited(_) => return hits,
            PauseReason::Watchpoint { .. } => hits += 1,
            _ => {}
        }
    }
}

/// Convenience constructors.
pub fn c_tracker(src: &str) -> MiTracker {
    MiTracker::load_c("bench.c", src).expect("compiles")
}

/// Convenience constructor for MiniPy benchmarks.
pub fn py_tracker(src: &str) -> PyTracker {
    PyTracker::load("bench.py", src).expect("parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_equivalent_across_languages() {
        let mut c = c_tracker(&c_loop(25));
        run_resume(&mut c);
        assert_eq!(c.get_exit_code(), Some((0..25).sum::<i64>() % 97));
        c.terminate();

        let mut p = py_tracker(&py_loop(25));
        run_resume(&mut p);
        assert_eq!(p.get_exit_code(), Some(0));
        p.terminate();
    }

    #[test]
    fn step_counts_scale_with_iterations() {
        let mut small = c_tracker(&c_loop(5));
        let s = run_step_all(&mut small);
        small.terminate();
        let mut big = c_tracker(&c_loop(20));
        let b = run_step_all(&mut big);
        big.terminate();
        assert!(b > s * 2);
    }

    #[test]
    fn watch_hits_equal_mutations() {
        let mut t = c_tracker(&c_loop(10));
        let hits = run_with_watch(&mut t, "acc");
        t.terminate();
        // acc is written once per iteration after the first change from
        // its initial 0 (i = 0 leaves it 0, so 9 observable changes...
        // plus the zero-init store is invisible as a change).
        assert!(hits >= 8, "hits = {hits}");
    }
}
