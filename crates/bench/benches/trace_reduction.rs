//! Python-Tutor trace generation and reduction (paper Fig. 10): the cost
//! of exporting a full trace vs a partial one, and the size ratio between
//! them — the paper reports ~10× reduction when restricting to the
//! interesting subset.

use bench::py_tracker;
use criterion::{criterion_group, criterion_main, Criterion};
use easytracker::{Recording, Tracker};
use pttrace::{trace_from_recording, trace_size, trace_with_options, ExportOptions};
use std::hint::black_box;

const PROG: &str = "\
def work(v, k):
    out = []
    for x in v:
        out.append(x * k)
    return out
data = [3, 1, 4, 1, 5, 9, 2, 6]
r1 = work(data, 2)
r2 = work(r1, 3)
n = len(r2)
print(n)
";

fn record() -> Recording {
    let mut t = py_tracker(PROG);
    let rec = Recording::capture(&mut t).unwrap();
    t.terminate();
    rec
}

fn trace_reduction(c: &mut Criterion) {
    let rec = record();
    let opts = ExportOptions {
        only_functions: Some(vec!["<module>".into()]),
        only_variables: Some(vec!["data".into(), "r1".into(), "r2".into(), "n".into()]),
        ..Default::default()
    };
    let full = trace_from_recording(&rec);
    let partial = trace_with_options(&rec, &opts);
    let (fs, ps) = (trace_size(&full), trace_size(&partial));
    println!(
        "fig10 trace sizes: full {fs} bytes, partial {ps} bytes, reduction {:.1}x",
        fs as f64 / ps as f64
    );
    assert!(fs > ps * 5, "partial trace must be much smaller");

    let mut g = c.benchmark_group("trace_export");
    g.sample_size(10);
    g.bench_function("record_run", |b| b.iter(|| black_box(record())));
    g.bench_function("export_full", |b| {
        b.iter(|| black_box(trace_from_recording(&rec)))
    });
    g.bench_function("export_partial", |b| {
        b.iter(|| black_box(trace_with_options(&rec, &opts)))
    });
    g.bench_function("import_roundtrip", |b| {
        b.iter(|| black_box(pttrace::recording_from_trace(&full, "p.py").unwrap()))
    });
    g.finish();
}

criterion_group!(benches, trace_reduction);
criterion_main!(benches);
