//! Machine-interface costs (paper Fig. 4): command round-trip latency
//! through the serialized transport, and the serialization cost of
//! program-state snapshots of growing size — the price the GDB-style
//! architecture pays for process isolation.

use bench::{c_heap, c_tracker};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use easytracker::{PauseReason, Tracker};
use state::ProgramState;
use std::hint::black_box;

fn command_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("mi_command_roundtrip");
    g.sample_size(20);
    let mut t = c_tracker("int main() {\nint x = 0;\nreturn x;\n}");
    t.start().unwrap();
    g.bench_function("get_exit_code", |b| b.iter(|| black_box(t.get_exit_code())));
    g.bench_function("get_variable", |b| {
        b.iter(|| black_box(t.get_variable("x").unwrap()))
    });
    g.finish();
    t.terminate();
}

fn state_snapshot(tracker_src: &str, bp_line: u32) -> ProgramState {
    let mut t = c_tracker(tracker_src);
    t.break_before_line(bp_line).unwrap();
    t.start().unwrap();
    loop {
        match t.resume().unwrap() {
            PauseReason::Breakpoint { .. } => break,
            PauseReason::Exited(_) => panic!("no pause"),
            _ => {}
        }
    }
    let st = t.get_state().unwrap();
    t.terminate();
    st
}

fn state_serialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("state_serialize");
    g.sample_size(20);
    for n in [8u32, 64, 256] {
        let st = state_snapshot(&c_heap(n), 6);
        let json = serde_json::to_string(&st).unwrap();
        println!(
            "state with {n}-element heap array: {} bytes serialized",
            json.len()
        );
        g.bench_with_input(BenchmarkId::new("encode", n), &st, |b, st| {
            b.iter(|| black_box(serde_json::to_string(st).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("decode", n), &json, |b, json| {
            b.iter(|| black_box(serde_json::from_str::<ProgramState>(json).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, command_roundtrip, state_serialization);
criterion_main!(benches);
