//! Control-granularity overhead (paper §II-C2 and §V).
//!
//! The paper states that (a) watchpoints in the Python tracker force
//! line-by-line single stepping, slowing execution "a lot", and (b)
//! control cost scales with the number of control/introspection points,
//! like any debugger. This bench measures, per tracker:
//!
//! * `uncontrolled` — the raw engine with no tracker at all;
//! * `resume` — tracker attached, zero control points;
//! * `step_all` — pause at every line;
//! * `watch1` — one watchpoint (forces per-store / per-line checks).
//!
//! Expected shape: `uncontrolled < resume << step_all ≈ watch1`.

use bench::{c_loop, c_tracker, py_loop, py_tracker, run_resume, run_step_all, run_with_watch};
use criterion::{criterion_group, criterion_main, Criterion};
use easytracker::Tracker as _;
use std::hint::black_box;

const ITERS: u32 = 60;

fn minic_group(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_overhead_minic");
    g.sample_size(10);
    let src = c_loop(ITERS);

    let program = minic::compile("bench.c", &src).unwrap();
    g.bench_function("uncontrolled", |b| {
        b.iter(|| {
            let mut vm = minic::vm::Vm::new(&program);
            black_box(vm.run_to_completion().unwrap())
        })
    });
    g.bench_function("resume", |b| {
        b.iter(|| {
            let mut t = c_tracker(&src);
            run_resume(&mut t);
            t.terminate();
        })
    });
    g.bench_function("step_all", |b| {
        b.iter(|| {
            let mut t = c_tracker(&src);
            black_box(run_step_all(&mut t));
            t.terminate();
        })
    });
    g.bench_function("watch1", |b| {
        b.iter(|| {
            let mut t = c_tracker(&src);
            black_box(run_with_watch(&mut t, "acc"));
            t.terminate();
        })
    });
    g.finish();
}

fn minipy_group(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_overhead_minipy");
    g.sample_size(10);
    let src = py_loop(ITERS);

    g.bench_function("uncontrolled", |b| {
        b.iter(|| {
            black_box(minipy::run_source(&src, &mut minipy::NullTracer).unwrap());
        })
    });
    g.bench_function("resume", |b| {
        b.iter(|| {
            let mut t = py_tracker(&src);
            run_resume(&mut t);
            t.terminate();
        })
    });
    g.bench_function("step_all", |b| {
        b.iter(|| {
            let mut t = py_tracker(&src);
            black_box(run_step_all(&mut t));
            t.terminate();
        })
    });
    g.bench_function("watch1", |b| {
        b.iter(|| {
            let mut t = py_tracker(&src);
            black_box(run_with_watch(&mut t, "acc"));
            t.terminate();
        })
    });
    g.finish();
}

criterion_group!(benches, minic_group, minipy_group);
criterion_main!(benches);
