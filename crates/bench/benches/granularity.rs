//! Pause-granularity sweep (paper Fig. 8's workload): on a recursion-heavy
//! program, pausing only at tracked-function boundaries must be far
//! cheaper than stepping every line — that is why the recursion tool uses
//! `track_function` + `resume` instead of stepping.

use bench::{c_fib, c_tracker, py_fib, py_tracker, run_step_all};
use criterion::{criterion_group, criterion_main, Criterion};
use easytracker::{PauseReason, Tracker};
use std::hint::black_box;

fn run_tracked(tracker: &mut dyn Tracker, function: &str) -> u64 {
    tracker.track_function(function, None).expect("track");
    tracker.start().expect("start");
    let mut events = 0;
    loop {
        match tracker.resume().expect("resume") {
            PauseReason::Exited(_) => return events,
            _ => events += 1,
        }
    }
}

fn run_tracked_maxdepth(tracker: &mut dyn Tracker, function: &str, maxdepth: u32) -> u64 {
    tracker
        .track_function(function, Some(maxdepth))
        .expect("track");
    tracker.start().expect("start");
    let mut events = 0;
    loop {
        match tracker.resume().expect("resume") {
            PauseReason::Exited(_) => return events,
            _ => events += 1,
        }
    }
}

fn granularity(c: &mut Criterion) {
    const N: u32 = 10;

    let mut g = c.benchmark_group("granularity_minic_fib10");
    g.sample_size(10);
    let c_src = c_fib(N);
    g.bench_function("step_every_line", |b| {
        b.iter(|| {
            let mut t = c_tracker(&c_src);
            black_box(run_step_all(&mut t));
            t.terminate();
        })
    });
    g.bench_function("track_function", |b| {
        b.iter(|| {
            let mut t = c_tracker(&c_src);
            black_box(run_tracked(&mut t, "fib"));
            t.terminate();
        })
    });
    g.bench_function("track_function_maxdepth2", |b| {
        b.iter(|| {
            let mut t = c_tracker(&c_src);
            black_box(run_tracked_maxdepth(&mut t, "fib", 2));
            t.terminate();
        })
    });
    g.finish();

    let mut g = c.benchmark_group("granularity_minipy_fib10");
    g.sample_size(10);
    let py_src = py_fib(N);
    g.bench_function("step_every_line", |b| {
        b.iter(|| {
            let mut t = py_tracker(&py_src);
            black_box(run_step_all(&mut t));
            t.terminate();
        })
    });
    g.bench_function("track_function", |b| {
        b.iter(|| {
            let mut t = py_tracker(&py_src);
            black_box(run_tracked(&mut t, "fib"));
            t.terminate();
        })
    });
    g.finish();
}

criterion_group!(benches, granularity);
criterion_main!(benches);
