//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **store-event machinery** — the MiniC VM can report every memory
//!   store (the watchpoint hook). What does the *mechanism* cost when
//!   enabled, isolated from the tracker stack?
//! * **trace-hook overhead** — the MiniPy interpreter calls a tracer at
//!   every line. How much does a no-op hook cost relative to a
//!   line-counting hook (the cheapest useful tracker)?
//! * **whole-block heap rendering** — inspecting a heap array with
//!   element rendering capped vs full (`InspectOptions::max_elems`).

use bench::{c_heap, c_loop, py_loop};
use criterion::{criterion_group, criterion_main, Criterion};
use minipy::{TraceAction, TraceCtx, TraceEvent, Tracer};
use std::hint::black_box;

fn store_events_ablation(c: &mut Criterion) {
    let program = minic::compile("abl.c", &c_loop(100)).unwrap();
    let mut g = c.benchmark_group("ablation_store_events");
    g.sample_size(10);
    g.bench_function("disabled", |b| {
        b.iter(|| {
            let mut vm = minic::vm::Vm::new(&program);
            black_box(vm.run_to_completion().unwrap())
        })
    });
    g.bench_function("enabled_drained", |b| {
        b.iter(|| {
            let mut vm = minic::vm::Vm::new(&program);
            vm.set_store_events(true);
            loop {
                match vm.step().unwrap() {
                    minic::vm::Event::Exited(code) => break black_box(code),
                    _ => continue,
                }
            }
        })
    });
    g.finish();
}

struct CountingTracer(u64);

impl Tracer for CountingTracer {
    fn trace(&mut self, event: &TraceEvent, _ctx: &TraceCtx<'_>) -> TraceAction {
        if matches!(event, TraceEvent::Line { .. }) {
            self.0 += 1;
        }
        TraceAction::Continue
    }
}

fn trace_hook_ablation(c: &mut Criterion) {
    let src = py_loop(100);
    let mut g = c.benchmark_group("ablation_trace_hook");
    g.sample_size(10);
    g.bench_function("null_hook", |b| {
        b.iter(|| black_box(minipy::run_source(&src, &mut minipy::NullTracer).unwrap()))
    });
    g.bench_function("counting_hook", |b| {
        b.iter(|| {
            let mut t = CountingTracer(0);
            minipy::run_source(&src, &mut t).unwrap();
            black_box(t.0)
        })
    });
    g.finish();
}

fn heap_render_ablation(c: &mut Criterion) {
    // Pause a VM holding a 512-element heap array, then inspect with
    // different element caps.
    let program = minic::compile("abl.c", &c_heap(512)).unwrap();
    let mut vm = minic::vm::Vm::new(&program);
    loop {
        match vm.step().unwrap() {
            minic::vm::Event::Line(6) => break, // `int done = 1;`
            minic::vm::Event::Exited(_) => panic!("missed the pause line"),
            _ => {}
        }
    }
    let mut g = c.benchmark_group("ablation_heap_render_cap");
    g.sample_size(10);
    for cap in [8usize, 64, 512] {
        let opts = minic::inspect::InspectOptions {
            max_elems: cap,
            ..Default::default()
        };
        g.bench_function(format!("cap_{cap}"), |b| {
            b.iter(|| black_box(minic::inspect::current_frame_with(&vm, opts)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    store_events_ablation,
    trace_hook_ablation,
    heap_render_ablation
);
criterion_main!(benches);
