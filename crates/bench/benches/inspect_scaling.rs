//! Inspection-cost scaling (paper Fig. 6 workloads): the cost of
//! `get_state` as the stack gets deeper and the heap gets bigger, for the
//! out-of-process (machine-interface, serializing) tracker vs the
//! in-process (thread snapshot) tracker. This is the quantitative
//! motivation for the paper's two-implementation design: in-process
//! inspection is much cheaper, which is why the Python tracker lives in
//! the inferior's interpreter.

use bench::{c_deep, c_heap, c_tracker, py_deep, py_heap, py_tracker};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use easytracker::{PauseReason, Tracker};
use std::hint::black_box;

/// Pauses a tracker at the bottom of the `down` recursion.
fn pause_deep(tracker: &mut dyn Tracker) {
    tracker.break_before_func("down", None).expect("bp");
    tracker.start().expect("start");
    loop {
        match tracker.resume().expect("resume") {
            PauseReason::Breakpoint { .. }
                if tracker.get_current_frame().expect("frame").depth() > 0 =>
            {
                // Keep resuming until the innermost call.
            }
            PauseReason::Exited(_) => panic!("should pause before exit"),
            _ => {}
        }
        let frame = tracker.get_current_frame().expect("frame");
        if let Some(v) = frame.variable("n") {
            if state::render_value(v.value().deref_fully()) == "0" {
                return;
            }
        }
    }
}

/// Pauses a tracker at the line after the heap array is built.
fn pause_after_heap(tracker: &mut dyn Tracker, line: u32) {
    tracker.break_before_line(line).expect("bp");
    tracker.start().expect("start");
    loop {
        match tracker.resume().expect("resume") {
            PauseReason::Breakpoint { .. } => return,
            PauseReason::Exited(_) => panic!("should pause before exit"),
            _ => {}
        }
    }
}

fn stack_depth_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("inspect_vs_stack_depth");
    g.sample_size(10);
    for depth in [2u32, 8, 24] {
        let mut mi = c_tracker(&c_deep(depth));
        pause_deep(&mut mi);
        g.bench_with_input(BenchmarkId::new("mi_tracker", depth), &depth, |b, _| {
            b.iter(|| black_box(mi.get_state().unwrap()))
        });
        mi.terminate();

        let mut py = py_tracker(&py_deep(depth));
        pause_deep(&mut py);
        g.bench_with_input(BenchmarkId::new("py_tracker", depth), &depth, |b, _| {
            b.iter(|| black_box(py.get_state().unwrap()))
        });
        py.terminate();
    }
    g.finish();
}

fn heap_size_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("inspect_vs_heap_size");
    g.sample_size(10);
    for n in [8u32, 64, 256] {
        // `int done = 1;` is line 6 in c_heap, `done = 1` line 4 in py_heap.
        let mut mi = c_tracker(&c_heap(n));
        pause_after_heap(&mut mi, 6);
        g.bench_with_input(BenchmarkId::new("mi_tracker", n), &n, |b, _| {
            b.iter(|| black_box(mi.get_state().unwrap()))
        });
        mi.terminate();

        let mut py = py_tracker(&py_heap(n));
        pause_after_heap(&mut py, 4);
        g.bench_with_input(BenchmarkId::new("py_tracker", n), &n, |b, _| {
            b.iter(|| black_box(py.get_state().unwrap()))
        });
        py.terminate();
    }
    g.finish();
}

criterion_group!(benches, stack_depth_scaling, heap_size_scaling);
criterion_main!(benches);
