//! The [`Value`] model: abstract type, content, conceptual location,
//! address and language-level type name (paper §II-B2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The nature of a [`Value`], determining what its [`Content`] holds.
///
/// This is the paper's `abstract_type` attribute. The mapping from concrete
/// language types is:
///
/// | Abstract    | C subset                      | Python subset            |
/// |-------------|-------------------------------|--------------------------|
/// | `Primitive` | `int long double float char char*` | `int float str bool` |
/// | `Ref`       | pointers                      | every variable binding   |
/// | `List`      | arrays                        | `list`, `tuple`          |
/// | `Dict`      | —                             | `dict`                   |
/// | `Struct`    | `struct`                      | class instances          |
/// | `None`      | —                             | `None`                   |
/// | `Invalid`   | dangling/wild pointers        | —                        |
/// | `Function`  | function pointers             | functions                |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AbstractType {
    /// A primitive scalar or string.
    Primitive,
    /// A reference to another value.
    Ref,
    /// An ordered, indexable sequence.
    List,
    /// A key-value mapping.
    Dict,
    /// A record of named fields.
    Struct,
    /// The distinguished "no value" instance.
    None,
    /// A reference that does not target valid memory.
    Invalid,
    /// A function value; content is the function's name.
    Function,
}

impl fmt::Display for AbstractType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbstractType::Primitive => "PRIMITIVE",
            AbstractType::Ref => "REF",
            AbstractType::List => "LIST",
            AbstractType::Dict => "DICT",
            AbstractType::Struct => "STRUCT",
            AbstractType::None => "NONE",
            AbstractType::Invalid => "INVALID",
            AbstractType::Function => "FUNCTION",
        };
        f.write_str(s)
    }
}

/// Primitive payloads carried by [`Content::Primitive`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Prim {
    /// Signed integers of any width up to 64 bits.
    Int(i64),
    /// IEEE-754 floating point numbers.
    Float(f64),
    /// Strings (`str` in the Python subset, `char*` in the C subset).
    Str(String),
    /// Booleans.
    Bool(bool),
    /// A single character (`char` in the C subset).
    Char(char),
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prim::Int(v) => write!(f, "{v}"),
            Prim::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Prim::Str(v) => write!(f, "{v:?}"),
            Prim::Bool(v) => write!(f, "{v}"),
            Prim::Char(v) => write!(f, "{v:?}"),
        }
    }
}

/// The payload of a [`Value`], discriminated by its [`AbstractType`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Content {
    /// Payload of [`AbstractType::Primitive`].
    Primitive(Prim),
    /// Payload of [`AbstractType::Ref`]: the referenced value.
    Ref(Box<Value>),
    /// Payload of [`AbstractType::List`]: the elements in order.
    List(Vec<Value>),
    /// Payload of [`AbstractType::Dict`]: key/value pairs in insertion order.
    Dict(Vec<(Value, Value)>),
    /// Payload of [`AbstractType::Struct`]: named fields in declaration order.
    Struct(Vec<(String, Value)>),
    /// Payload of [`AbstractType::None`] and [`AbstractType::Invalid`].
    Nothing,
    /// Payload of [`AbstractType::Function`]: the function's name.
    Function(String),
}

/// Where a value conceptually lives in the inferior's memory.
///
/// "Conceptual" matches the paper: e.g. every Python variable is a `Ref` on
/// the stack pointing into the heap, even though CPython implements this
/// differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Location {
    /// In some stack frame.
    Stack,
    /// In dynamically allocated memory.
    Heap,
    /// In the global/static data region.
    Global,
    /// In a machine register.
    Register,
    /// A constant with no storage (e.g. an rvalue shown by a tool).
    Constant,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Location::Stack => "stack",
            Location::Heap => "heap",
            Location::Global => "global",
            Location::Register => "register",
            Location::Constant => "constant",
        };
        f.write_str(s)
    }
}

/// A value of the inferior, in the language-agnostic representation.
///
/// A `Value` bundles its [`AbstractType`], its [`Content`], a conceptual
/// [`Location`], an optional machine `address`, and the `language_type`: the
/// type's name in the inferior language's own terminology (`"char*"`,
/// `"tuple"`, ...).
///
/// # Examples
///
/// ```
/// use state::{Value, Prim, AbstractType};
/// let list = Value::list(
///     vec![Value::primitive(Prim::Int(1), "int"), Value::primitive(Prim::Int(2), "int")],
///     "int[2]",
/// );
/// assert_eq!(list.abstract_type(), AbstractType::List);
/// assert_eq!(list.children().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Value {
    abstract_type: AbstractType,
    content: Content,
    location: Location,
    address: Option<u64>,
    language_type: String,
}

impl Value {
    fn build(
        abstract_type: AbstractType,
        content: Content,
        language_type: impl Into<String>,
    ) -> Self {
        Value {
            abstract_type,
            content,
            location: Location::Constant,
            address: None,
            language_type: language_type.into(),
        }
    }

    /// Creates a primitive value.
    pub fn primitive(p: Prim, language_type: impl Into<String>) -> Self {
        Value::build(
            AbstractType::Primitive,
            Content::Primitive(p),
            language_type,
        )
    }

    /// Creates a reference to `target`.
    pub fn reference(target: Value, language_type: impl Into<String>) -> Self {
        Value::build(
            AbstractType::Ref,
            Content::Ref(Box::new(target)),
            language_type,
        )
    }

    /// Creates a list/array/tuple value from its elements.
    pub fn list(items: Vec<Value>, language_type: impl Into<String>) -> Self {
        Value::build(AbstractType::List, Content::List(items), language_type)
    }

    /// Creates a dictionary value from its entries.
    pub fn dict(entries: Vec<(Value, Value)>, language_type: impl Into<String>) -> Self {
        Value::build(AbstractType::Dict, Content::Dict(entries), language_type)
    }

    /// Creates a struct/instance value from its named fields.
    pub fn structure(fields: Vec<(String, Value)>, language_type: impl Into<String>) -> Self {
        Value::build(AbstractType::Struct, Content::Struct(fields), language_type)
    }

    /// Creates the distinguished "none" value.
    pub fn none(language_type: impl Into<String>) -> Self {
        Value::build(AbstractType::None, Content::Nothing, language_type)
    }

    /// Creates an invalid-reference value (e.g. a dangling C pointer).
    pub fn invalid(language_type: impl Into<String>) -> Self {
        Value::build(AbstractType::Invalid, Content::Nothing, language_type)
    }

    /// Creates a function value from the function's name.
    pub fn function(name: impl Into<String>, language_type: impl Into<String>) -> Self {
        Value::build(
            AbstractType::Function,
            Content::Function(name.into()),
            language_type,
        )
    }

    /// Sets the conceptual memory location (builder style).
    #[must_use]
    pub fn with_location(mut self, location: Location) -> Self {
        self.location = location;
        self
    }

    /// Sets the machine address (builder style).
    #[must_use]
    pub fn with_address(mut self, address: u64) -> Self {
        self.address = Some(address);
        self
    }

    /// The value's abstract type tag.
    pub fn abstract_type(&self) -> AbstractType {
        self.abstract_type
    }

    /// The value's content payload.
    pub fn content(&self) -> &Content {
        &self.content
    }

    /// The value's conceptual memory location.
    pub fn location(&self) -> Location {
        self.location
    }

    /// The value's machine address, when the tracker knows one. References
    /// have no address of their own (paper §II-B2).
    pub fn address(&self) -> Option<u64> {
        self.address
    }

    /// The type name in the inferior language's terminology.
    pub fn language_type(&self) -> &str {
        &self.language_type
    }

    /// Follows `Ref` links until a non-reference value is reached.
    ///
    /// Returns `self` when the value is not a reference.
    pub fn deref_fully(&self) -> &Value {
        let mut cur = self;
        while let Content::Ref(inner) = &cur.content {
            cur = inner;
        }
        cur
    }

    /// Iterates over the immediate child values (list elements, dict keys and
    /// values, struct fields, reference target). Primitives and leaves yield
    /// nothing.
    pub fn children(&self) -> Children<'_> {
        Children {
            inner: match &self.content {
                Content::Ref(v) => ChildrenInner::Single(Some(v)),
                Content::List(items) => ChildrenInner::Slice(items.iter()),
                Content::Dict(entries) => ChildrenInner::Pairs(entries.iter(), None),
                Content::Struct(fields) => ChildrenInner::Fields(fields.iter()),
                _ => ChildrenInner::Empty,
            },
        }
    }

    /// Total number of `Value` nodes in this tree, including `self`.
    pub fn node_count(&self) -> usize {
        1 + self.children().map(Value::node_count).sum::<usize>()
    }

    /// Maximum reference/containment depth of the value tree.
    pub fn depth(&self) -> usize {
        1 + self.children().map(Value::depth).max().unwrap_or(0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render::render_value(self))
    }
}

/// Iterator over a value's immediate children, created by [`Value::children`].
#[derive(Debug, Clone)]
pub struct Children<'a> {
    inner: ChildrenInner<'a>,
}

#[derive(Debug, Clone)]
enum ChildrenInner<'a> {
    Empty,
    Single(Option<&'a Value>),
    Slice(std::slice::Iter<'a, Value>),
    Pairs(std::slice::Iter<'a, (Value, Value)>, Option<&'a Value>),
    Fields(std::slice::Iter<'a, (String, Value)>),
}

impl<'a> Iterator for Children<'a> {
    type Item = &'a Value;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            ChildrenInner::Empty => None,
            ChildrenInner::Single(v) => v.take(),
            ChildrenInner::Slice(it) => it.next(),
            ChildrenInner::Pairs(it, pending) => {
                if let Some(v) = pending.take() {
                    return Some(v);
                }
                let (k, v) = it.next()?;
                *pending = Some(v);
                Some(k)
            }
            ChildrenInner::Fields(it) => it.next().map(|(_, v)| v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abstract_type_matches_constructor() {
        assert_eq!(
            Value::primitive(Prim::Int(1), "int").abstract_type(),
            AbstractType::Primitive
        );
        assert_eq!(Value::none("NoneType").abstract_type(), AbstractType::None);
        assert_eq!(
            Value::invalid("int*").abstract_type(),
            AbstractType::Invalid
        );
        assert_eq!(
            Value::function("main", "function").abstract_type(),
            AbstractType::Function
        );
    }

    #[test]
    fn deref_fully_chases_chains() {
        let target = Value::primitive(Prim::Int(5), "int");
        let r1 = Value::reference(target.clone(), "int*");
        let r2 = Value::reference(r1, "int**");
        assert_eq!(r2.deref_fully(), &target);
        assert_eq!(target.deref_fully(), &target);
    }

    #[test]
    fn children_cover_all_shapes() {
        let leaf = Value::primitive(Prim::Int(0), "int");
        assert_eq!(leaf.children().count(), 0);

        let l = Value::list(vec![leaf.clone(), leaf.clone()], "int[2]");
        assert_eq!(l.children().count(), 2);

        let d = Value::dict(vec![(leaf.clone(), leaf.clone())], "dict");
        assert_eq!(d.children().count(), 2); // key and value

        let s = Value::structure(vec![("a".into(), leaf.clone())], "struct s");
        assert_eq!(s.children().count(), 1);

        let r = Value::reference(leaf.clone(), "int*");
        assert_eq!(r.children().count(), 1);
    }

    #[test]
    fn node_count_and_depth() {
        let leaf = Value::primitive(Prim::Int(0), "int");
        let list = Value::list(vec![leaf.clone(), leaf.clone()], "int[2]");
        let root = Value::reference(list, "int(*)[2]");
        assert_eq!(root.node_count(), 4);
        assert_eq!(root.depth(), 3);
    }

    #[test]
    fn builder_sets_location_and_address() {
        let v = Value::primitive(Prim::Bool(true), "bool")
            .with_location(Location::Global)
            .with_address(0xdead);
        assert_eq!(v.location(), Location::Global);
        assert_eq!(v.address(), Some(0xdead));
    }

    #[test]
    fn prim_display_is_compact() {
        assert_eq!(Prim::Int(-3).to_string(), "-3");
        assert_eq!(Prim::Float(2.0).to_string(), "2.0");
        assert_eq!(Prim::Float(2.5).to_string(), "2.5");
        assert_eq!(Prim::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
        assert_eq!(Prim::Char('x').to_string(), "'x'");
        assert_eq!(Prim::Bool(false).to_string(), "false");
    }

    #[test]
    fn json_roundtrip_nested() {
        let v = Value::structure(
            vec![
                (
                    "items".into(),
                    Value::list(vec![Value::primitive(Prim::Int(1), "int")], "list"),
                ),
                ("next".into(), Value::none("NoneType")),
            ],
            "Node",
        )
        .with_location(Location::Heap)
        .with_address(140_000);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
