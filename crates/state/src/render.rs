//! Compact textual rendering of [`Value`]s, used by pause reasons,
//! diagnostics and the text-mode visualizations.

use crate::value::{Content, Value};
use std::fmt::Write as _;

/// Renders a value as a single compact line, e.g. `[1, 2, 3]`,
/// `{"a": 1}`, `&0x7ff0`, `<fn sort>`, `Node{v: 1, next: None}`.
///
/// Reference targets are not expanded (only the arrow and the target address
/// are shown) so the rendering stays bounded even for cyclic structures.
///
/// # Examples
///
/// ```
/// use state::{render_value, Value, Prim};
/// let v = Value::list(vec![Value::primitive(Prim::Int(1), "int")], "int[1]");
/// assert_eq!(render_value(&v), "[1]");
/// ```
pub fn render_value(value: &Value) -> String {
    let mut out = String::new();
    render_into(&mut out, value);
    out
}

fn render_into(out: &mut String, value: &Value) {
    match value.content() {
        Content::Primitive(p) => {
            let _ = write!(out, "{p}");
        }
        Content::Ref(target) => match target.address() {
            Some(addr) => {
                let _ = write!(out, "&{addr:#x}");
            }
            None => {
                out.push('&');
                render_into(out, target);
            }
        },
        Content::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_into(out, item);
            }
            out.push(']');
        }
        Content::Dict(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_into(out, k);
                out.push_str(": ");
                render_into(out, v);
            }
            out.push('}');
        }
        Content::Struct(fields) => {
            let _ = write!(out, "{}{{", value.language_type());
            for (i, (name, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{name}: ");
                render_into(out, v);
            }
            out.push('}');
        }
        Content::Nothing => {
            if value.abstract_type() == crate::AbstractType::Invalid {
                // An invalid pointer that still carries a heap location is a
                // *dangling* pointer: it targets a block that has been freed.
                // Wild or null pointers have no meaningful location and stay
                // plain `<invalid>`.
                if value.location() == crate::Location::Heap {
                    out.push_str("<dangling>");
                } else {
                    out.push_str("<invalid>");
                }
            } else {
                out.push_str("None");
            }
        }
        Content::Function(name) => {
            let _ = write!(out, "<fn {name}>");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Prim, Value};

    #[test]
    fn renders_primitives() {
        assert_eq!(render_value(&Value::primitive(Prim::Int(7), "int")), "7");
        assert_eq!(
            render_value(&Value::primitive(Prim::Str("hi".into()), "str")),
            "\"hi\""
        );
    }

    #[test]
    fn renders_list_and_dict() {
        let l = Value::list(
            vec![
                Value::primitive(Prim::Int(1), "int"),
                Value::primitive(Prim::Int(2), "int"),
            ],
            "list",
        );
        assert_eq!(render_value(&l), "[1, 2]");
        let d = Value::dict(
            vec![(
                Value::primitive(Prim::Str("a".into()), "str"),
                Value::primitive(Prim::Int(1), "int"),
            )],
            "dict",
        );
        assert_eq!(render_value(&d), "{\"a\": 1}");
    }

    #[test]
    fn renders_struct_and_function_and_none() {
        let s = Value::structure(
            vec![("v".into(), Value::primitive(Prim::Int(1), "int"))],
            "Node",
        );
        assert_eq!(render_value(&s), "Node{v: 1}");
        assert_eq!(render_value(&Value::function("f", "function")), "<fn f>");
        assert_eq!(render_value(&Value::none("NoneType")), "None");
        assert_eq!(render_value(&Value::invalid("int*")), "<invalid>");
    }

    #[test]
    fn renders_dangling_heap_pointers() {
        let d = Value::invalid("int*")
            .with_location(crate::Location::Heap)
            .with_address(0x10_0040);
        assert_eq!(render_value(&d), "<dangling>");
    }

    #[test]
    fn renders_refs_by_address_when_known() {
        let target = Value::primitive(Prim::Int(5), "int").with_address(0x1000);
        let r = Value::reference(target, "int*");
        assert_eq!(render_value(&r), "&0x1000");
        let anon = Value::reference(Value::primitive(Prim::Int(5), "int"), "int*");
        assert_eq!(render_value(&anon), "&5");
    }
}
