//! Pause reasons and source locations reported by the control interface.

use crate::diag::Diagnostic;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A position in the inferior's source code.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SourceLocation {
    file: String,
    line: u32,
}

impl SourceLocation {
    /// Creates a location from a file name and a 1-based line number.
    pub fn new(file: impl Into<String>, line: u32) -> Self {
        SourceLocation {
            file: file.into(),
            line,
        }
    }

    /// The source file name as given to `load_program`.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// The 1-based line number.
    pub fn line(&self) -> u32 {
        self.line
    }
}

impl fmt::Display for SourceLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// How the inferior terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExitStatus {
    /// Normal termination with the given exit code.
    Exited(i64),
    /// The inferior's runtime raised an unrecoverable error.
    Crashed,
}

impl ExitStatus {
    /// The exit code for a normal exit, `None` for a crash.
    pub fn code(&self) -> Option<i64> {
        match self {
            ExitStatus::Exited(c) => Some(*c),
            ExitStatus::Crashed => None,
        }
    }
}

/// Why a control-interface call returned, i.e. why the inferior is paused.
///
/// This mirrors the paper's `pause_reason` (§II-B1): execution pauses
/// because (1) the program exited, (2) a watched variable changed, (3) a
/// tracked function was entered or exited, (4) a breakpoint was hit, or
/// (5) a single-stepping command finished.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PauseReason {
    /// `load_program` succeeded but `start` has not run yet.
    NotStarted,
    /// `start` completed: the inferior is paused before its first line.
    Started,
    /// A line or function breakpoint was hit.
    Breakpoint {
        /// Identifier returned when the breakpoint was created.
        id: u64,
        /// Where the inferior is paused.
        location: SourceLocation,
    },
    /// A watched variable changed value.
    Watchpoint {
        /// Identifier returned by `watch`.
        id: u64,
        /// The watched variable's name (qualified, e.g. `main::x`).
        variable: String,
        /// Rendering of the value before the write, if known.
        old: Option<String>,
        /// Rendering of the value after the write.
        new: String,
    },
    /// A tracked function was entered (paused after entry, arguments bound).
    FunctionCall {
        /// The tracked function's name.
        function: String,
        /// Call depth of the new frame.
        depth: u32,
    },
    /// A tracked function is about to return (frame still inspectable).
    FunctionReturn {
        /// The tracked function's name.
        function: String,
        /// Call depth of the returning frame.
        depth: u32,
        /// Rendering of the return value, if any.
        return_value: Option<String>,
    },
    /// A `step`, `next` or `finish` command completed.
    Step,
    /// The runtime sanitizer trapped on a memory-safety violation. The
    /// offending operation has already completed (benignly, against
    /// quarantined or shadow-tracked memory), so the inferior is still
    /// alive and resumable.
    Sanitizer {
        /// What the sanitizer detected.
        diagnostic: Diagnostic,
    },
    /// The inferior terminated.
    Exited(ExitStatus),
}

impl PauseReason {
    /// Whether the inferior is still alive (can be resumed).
    pub fn is_alive(&self) -> bool {
        !matches!(self, PauseReason::Exited(_) | PauseReason::NotStarted)
    }

    /// Stable short name of the variant, without its payload — used as a
    /// span tag in observability output.
    pub fn tag(&self) -> &'static str {
        match self {
            PauseReason::NotStarted => "NotStarted",
            PauseReason::Started => "Started",
            PauseReason::Breakpoint { .. } => "Breakpoint",
            PauseReason::Watchpoint { .. } => "Watchpoint",
            PauseReason::FunctionCall { .. } => "FunctionCall",
            PauseReason::FunctionReturn { .. } => "FunctionReturn",
            PauseReason::Step => "Step",
            PauseReason::Sanitizer { .. } => "Sanitizer",
            PauseReason::Exited(_) => "Exited",
        }
    }

    /// Whether this reason reports a tracked-function event.
    pub fn is_function_event(&self) -> bool {
        matches!(
            self,
            PauseReason::FunctionCall { .. } | PauseReason::FunctionReturn { .. }
        )
    }
}

impl fmt::Display for PauseReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PauseReason::NotStarted => write!(f, "not started"),
            PauseReason::Started => write!(f, "started"),
            PauseReason::Breakpoint { id, location } => {
                write!(f, "breakpoint {id} at {location}")
            }
            PauseReason::Watchpoint {
                variable, old, new, ..
            } => match old {
                Some(old) => write!(f, "watch {variable}: {old} -> {new}"),
                None => write!(f, "watch {variable}: -> {new}"),
            },
            PauseReason::FunctionCall { function, depth } => {
                write!(f, "call {function} (depth {depth})")
            }
            PauseReason::FunctionReturn {
                function,
                depth,
                return_value,
            } => match return_value {
                Some(rv) => write!(f, "return {function} (depth {depth}) -> {rv}"),
                None => write!(f, "return {function} (depth {depth})"),
            },
            PauseReason::Step => write!(f, "step"),
            PauseReason::Sanitizer { diagnostic } => write!(f, "sanitizer: {diagnostic}"),
            PauseReason::Exited(ExitStatus::Exited(c)) => write!(f, "exited ({c})"),
            PauseReason::Exited(ExitStatus::Crashed) => write!(f, "crashed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alive_classification() {
        assert!(!PauseReason::NotStarted.is_alive());
        assert!(PauseReason::Started.is_alive());
        assert!(PauseReason::Step.is_alive());
        assert!(PauseReason::Sanitizer {
            diagnostic: crate::Diagnostic::new(
                crate::DiagnosticKind::DoubleFree,
                3,
                "main",
                "freed twice"
            ),
        }
        .is_alive());
        assert!(!PauseReason::Exited(ExitStatus::Exited(0)).is_alive());
        assert!(!PauseReason::Exited(ExitStatus::Crashed).is_alive());
    }

    #[test]
    fn function_event_classification() {
        assert!(PauseReason::FunctionCall {
            function: "f".into(),
            depth: 1
        }
        .is_function_event());
        assert!(PauseReason::FunctionReturn {
            function: "f".into(),
            depth: 1,
            return_value: None
        }
        .is_function_event());
        assert!(!PauseReason::Step.is_function_event());
    }

    #[test]
    fn display_forms() {
        let loc = SourceLocation::new("a.py", 12);
        assert_eq!(loc.to_string(), "a.py:12");
        let bp = PauseReason::Breakpoint {
            id: 3,
            location: loc,
        };
        assert_eq!(bp.to_string(), "breakpoint 3 at a.py:12");
        let w = PauseReason::Watchpoint {
            id: 1,
            variable: "main::x".into(),
            old: Some("1".into()),
            new: "2".into(),
        };
        assert_eq!(w.to_string(), "watch main::x: 1 -> 2");
    }

    #[test]
    fn exit_status_code() {
        assert_eq!(ExitStatus::Exited(3).code(), Some(3));
        assert_eq!(ExitStatus::Crashed.code(), None);
    }

    #[test]
    fn pause_reason_serde_roundtrip() {
        let reasons = vec![
            PauseReason::NotStarted,
            PauseReason::Started,
            PauseReason::Step,
            PauseReason::Exited(ExitStatus::Exited(42)),
            PauseReason::Watchpoint {
                id: 7,
                variable: "g".into(),
                old: None,
                new: "[1, 2]".into(),
            },
            PauseReason::Sanitizer {
                diagnostic: crate::Diagnostic::new(
                    crate::DiagnosticKind::UseAfterFree,
                    9,
                    "main",
                    "load from freed block",
                ),
            },
        ];
        for r in reasons {
            let json = serde_json::to_string(&r).unwrap();
            let back: PauseReason = serde_json::from_str(&json).unwrap();
            assert_eq!(r, back);
        }
    }
}
