//! Structured memory-safety diagnostics.
//!
//! The static analysis in `crates/analysis` and the MiniC VM's runtime
//! sanitizer both report findings as [`Diagnostic`] values: a kind, the
//! source line it anchors to, the enclosing function, and a severity.
//! Because the type lives in `state` it can cross the machine-interface
//! boundary exactly like a [`crate::ProgramState`] snapshot, and a
//! trap-with-diagnostic pause surfaces as
//! [`crate::PauseReason::Sanitizer`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of memory-safety defect a [`Diagnostic`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DiagnosticKind {
    /// A scalar local is read on some path before any write reaches it.
    UninitRead,
    /// A heap pointer is dereferenced after the block it points into was
    /// freed.
    UseAfterFree,
    /// A heap block is freed twice.
    DoubleFree,
    /// Pointer arithmetic or indexing escapes the bounds of the block the
    /// pointer was derived from.
    OutOfBounds,
    /// A store whose value can never be observed: it is overwritten (or the
    /// variable dies) before any read.
    DeadStore,
    /// A heap block is still reachable-from-nowhere live at program exit.
    Leak,
}

impl DiagnosticKind {
    /// All kinds, in severity-then-declaration order. Handy for exhaustive
    /// fixture coverage checks.
    pub const ALL: [DiagnosticKind; 6] = [
        DiagnosticKind::UninitRead,
        DiagnosticKind::UseAfterFree,
        DiagnosticKind::DoubleFree,
        DiagnosticKind::OutOfBounds,
        DiagnosticKind::DeadStore,
        DiagnosticKind::Leak,
    ];

    /// Stable lowercase name, used in CLI output and metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            DiagnosticKind::UninitRead => "uninit-read",
            DiagnosticKind::UseAfterFree => "use-after-free",
            DiagnosticKind::DoubleFree => "double-free",
            DiagnosticKind::OutOfBounds => "out-of-bounds",
            DiagnosticKind::DeadStore => "dead-store",
            DiagnosticKind::Leak => "leak",
        }
    }

    /// The severity this kind defaults to when reported by the analyses in
    /// this repository.
    pub fn default_severity(&self) -> Severity {
        match self {
            DiagnosticKind::UseAfterFree
            | DiagnosticKind::DoubleFree
            | DiagnosticKind::OutOfBounds => Severity::Error,
            DiagnosticKind::UninitRead | DiagnosticKind::Leak => Severity::Warning,
            DiagnosticKind::DeadStore => Severity::Note,
        }
    }
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Stylistic or performance finding; the program's behaviour is defined.
    Note,
    /// Likely bug on some path; behaviour may still be defined.
    Warning,
    /// Undefined behaviour if the flagged operation executes.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// One memory-safety finding, produced statically by the dataflow checker
/// or dynamically by the VM sanitizer.
///
/// # Examples
///
/// ```
/// use state::{Diagnostic, DiagnosticKind};
/// let d = Diagnostic::new(DiagnosticKind::DoubleFree, 7, "main", "block freed twice");
/// assert_eq!(d.to_string(), "error: double-free at main:7: block freed twice");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The defect class.
    pub kind: DiagnosticKind,
    /// 1-based source line the finding anchors to.
    pub span: u32,
    /// Name of the enclosing function.
    pub function: String,
    /// How serious the finding is.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic with the kind's default severity.
    pub fn new(
        kind: DiagnosticKind,
        span: u32,
        function: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            kind,
            span,
            function: function.into(),
            severity: kind.default_severity(),
            message: message.into(),
        }
    }

    /// Overrides the severity.
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// The dedupe key: two findings with the same key describe the same
    /// defect site.
    pub fn key(&self) -> (DiagnosticKind, String, u32) {
        (self.kind, self.function.clone(), self.span)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} at {}:{}: {}",
            self.severity, self.kind, self.function, self.span, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<_> = DiagnosticKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "uninit-read",
                "use-after-free",
                "double-free",
                "out-of-bounds",
                "dead-store",
                "leak"
            ]
        );
    }

    #[test]
    fn default_severities() {
        assert_eq!(
            DiagnosticKind::DoubleFree.default_severity(),
            Severity::Error
        );
        assert_eq!(DiagnosticKind::Leak.default_severity(), Severity::Warning);
        assert_eq!(DiagnosticKind::DeadStore.default_severity(), Severity::Note);
    }

    #[test]
    fn diagnostic_display_and_roundtrip() {
        let d = Diagnostic::new(DiagnosticKind::UseAfterFree, 12, "f", "read of freed block");
        assert_eq!(
            d.to_string(),
            "error: use-after-free at f:12: read of freed block"
        );
        let json = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn severity_ordering_supports_max() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }
}
