//! Language-agnostic, serializable representation of the state of a paused
//! program.
//!
//! This crate implements the class diagram of Fig. 3 of the EasyTracker paper:
//! a paused *inferior* is described by a stack of [`Frame`]s, each holding
//! named [`Variable`]s, whose values are [`Value`]s tagged with an
//! [`AbstractType`], a conceptual memory [`Location`], an optional machine
//! address, and the type name in the inferior language's own terminology.
//!
//! The representation is deliberately identical for every supported inferior
//! language (a C subset, a Python subset, and RISC-V assembly in this
//! repository), so that a visualization tool written once works on all of
//! them. All types serialize with [serde], which is what lets the GDB-style
//! tracker ship state across its machine-interface pipe, and what lets tools
//! dump state as JSON for web front ends.
//!
//! # Examples
//!
//! ```
//! use state::{Value, Prim, Location};
//!
//! // The integer 42 stored on the stack at address 0x7ff0, as a C `int`.
//! let v = Value::primitive(Prim::Int(42), "int")
//!     .with_location(Location::Stack)
//!     .with_address(0x7ff0);
//! assert_eq!(v.language_type(), "int");
//! let json = serde_json::to_string(&v).unwrap();
//! let back: Value = serde_json::from_str(&json).unwrap();
//! assert_eq!(v, back);
//! ```

mod diag;
mod pause;
mod render;
mod value;

pub use diag::{Diagnostic, DiagnosticKind, Severity};
pub use pause::{ExitStatus, PauseReason, SourceLocation};
pub use render::render_value;
pub use value::{AbstractType, Content, Location, Prim, Value};

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A named variable in some scope of the paused inferior.
///
/// # Examples
///
/// ```
/// use state::{Variable, Value, Prim, Scope};
/// let var = Variable::new("x", Scope::Local, Value::primitive(Prim::Int(3), "int"));
/// assert_eq!(var.name(), "x");
/// assert_eq!(var.scope(), Scope::Local);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    name: String,
    scope: Scope,
    value: Value,
}

impl Variable {
    /// Creates a variable from its name, scope and value.
    pub fn new(name: impl Into<String>, scope: Scope, value: Value) -> Self {
        Variable {
            name: name.into(),
            scope,
            value,
        }
    }

    /// The variable's name as spelled in the inferior source.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scope the variable was found in.
    pub fn scope(&self) -> Scope {
        self.scope
    }

    /// The variable's current value.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// Consumes the variable and returns its value.
    pub fn into_value(self) -> Value {
        self.value
    }
}

/// Scope classification of a [`Variable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scope {
    /// A local variable (or parameter) of the frame it appears in.
    Local,
    /// A function parameter. Parameters are also locals; trackers that can
    /// distinguish them report `Parameter`, others report `Local`.
    Parameter,
    /// A global (module-level / file-scope) variable.
    Global,
    /// A machine register (assembly-level inferiors).
    Register,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scope::Local => "local",
            Scope::Parameter => "parameter",
            Scope::Global => "global",
            Scope::Register => "register",
        };
        f.write_str(s)
    }
}

/// One stack frame of the paused inferior.
///
/// Frames form a singly linked list from the innermost (currently executing)
/// frame to `main`'s frame through [`Frame::parent`]. `depth` is `0` for the
/// outermost frame and grows inward, matching the paper's `maxdepth`
/// convention.
///
/// # Examples
///
/// ```
/// use state::{Frame, Variable, Value, Prim, Scope, SourceLocation};
/// let mut f = Frame::new("main", 0, SourceLocation::new("prog.c", 3));
/// f.insert_variable(Variable::new("x", Scope::Local, Value::primitive(Prim::Int(1), "int")));
/// assert_eq!(f.variables().count(), 1);
/// assert!(f.variable("x").is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    name: String,
    depth: u32,
    location: SourceLocation,
    /// Insertion order is preserved via an explicit ordering vector so that
    /// diagrams list variables in declaration order, like the paper's tools.
    order: Vec<String>,
    variables: BTreeMap<String, Variable>,
    parent: Option<Box<Frame>>,
}

impl Frame {
    /// Creates an empty frame for function `name` at call `depth`.
    pub fn new(name: impl Into<String>, depth: u32, location: SourceLocation) -> Self {
        Frame {
            name: name.into(),
            depth,
            location,
            order: Vec::new(),
            variables: BTreeMap::new(),
            parent: None,
        }
    }

    /// The name of the function this frame executes.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Call depth of this frame: `0` for the program entry point.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Where in the source this frame is currently paused.
    pub fn location(&self) -> &SourceLocation {
        &self.location
    }

    /// Adds (or replaces) a variable in the frame.
    pub fn insert_variable(&mut self, var: Variable) {
        if !self.variables.contains_key(var.name()) {
            self.order.push(var.name().to_owned());
        }
        self.variables.insert(var.name().to_owned(), var);
    }

    /// Looks a variable up by name.
    pub fn variable(&self, name: &str) -> Option<&Variable> {
        self.variables.get(name)
    }

    /// Iterates over variables in their declaration order.
    pub fn variables(&self) -> impl Iterator<Item = &Variable> {
        self.order.iter().filter_map(|n| self.variables.get(n))
    }

    /// Number of variables visible in the frame.
    pub fn len(&self) -> usize {
        self.variables.len()
    }

    /// Whether the frame has no visible variables.
    pub fn is_empty(&self) -> bool {
        self.variables.is_empty()
    }

    /// The caller's frame, if this frame is not the outermost one.
    pub fn parent(&self) -> Option<&Frame> {
        self.parent.as_deref()
    }

    /// Attaches the caller's frame.
    pub fn set_parent(&mut self, parent: Frame) {
        self.parent = Some(Box::new(parent));
    }

    /// Walks the frame chain from this frame outward (inclusive).
    pub fn chain(&self) -> FrameChain<'_> {
        FrameChain { next: Some(self) }
    }
}

/// Iterator over a frame and its ancestors, innermost first.
///
/// Produced by [`Frame::chain`].
#[derive(Debug, Clone)]
pub struct FrameChain<'a> {
    next: Option<&'a Frame>,
}

impl<'a> Iterator for FrameChain<'a> {
    type Item = &'a Frame;

    fn next(&mut self) -> Option<Self::Item> {
        let cur = self.next?;
        self.next = cur.parent();
        Some(cur)
    }
}

/// A full snapshot of a paused program: stack, globals and the source
/// position, ready for serialization.
///
/// This is the unit that crosses the machine-interface boundary in the
/// GDB-style tracker and the unit the Python-Tutor exporter records per step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramState {
    /// Innermost frame; ancestors hang off [`Frame::parent`].
    pub frame: Frame,
    /// Global variables visible at the pause point.
    pub globals: Vec<Variable>,
    /// Why the program paused.
    pub reason: PauseReason,
}

impl ProgramState {
    /// Creates a snapshot from its parts.
    pub fn new(frame: Frame, globals: Vec<Variable>, reason: PauseReason) -> Self {
        ProgramState {
            frame,
            globals,
            reason,
        }
    }

    /// Total number of frames on the stack.
    pub fn stack_depth(&self) -> usize {
        self.frame.chain().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc() -> SourceLocation {
        SourceLocation::new("t.c", 1)
    }

    #[test]
    fn frame_preserves_declaration_order() {
        let mut f = Frame::new("f", 0, loc());
        for name in ["zeta", "alpha", "mid"] {
            f.insert_variable(Variable::new(
                name,
                Scope::Local,
                Value::primitive(Prim::Int(0), "int"),
            ));
        }
        let names: Vec<_> = f.variables().map(|v| v.name().to_owned()).collect();
        assert_eq!(names, ["zeta", "alpha", "mid"]);
    }

    #[test]
    fn frame_replacement_keeps_single_entry() {
        let mut f = Frame::new("f", 0, loc());
        f.insert_variable(Variable::new(
            "x",
            Scope::Local,
            Value::primitive(Prim::Int(1), "int"),
        ));
        f.insert_variable(Variable::new(
            "x",
            Scope::Local,
            Value::primitive(Prim::Int(2), "int"),
        ));
        assert_eq!(f.len(), 1);
        match f.variable("x").unwrap().value().content() {
            Content::Primitive(Prim::Int(n)) => assert_eq!(*n, 2),
            other => panic!("unexpected content {other:?}"),
        }
    }

    #[test]
    fn frame_chain_walks_to_main() {
        let mut main = Frame::new("main", 0, loc());
        main.insert_variable(Variable::new(
            "g",
            Scope::Local,
            Value::primitive(Prim::Int(7), "int"),
        ));
        let mut inner = Frame::new("helper", 1, loc());
        inner.set_parent(main);
        let names: Vec<_> = inner.chain().map(|f| f.name().to_owned()).collect();
        assert_eq!(names, ["helper", "main"]);
        assert_eq!(inner.chain().count(), 2);
    }

    #[test]
    fn program_state_roundtrips_through_json() {
        let mut f = Frame::new("main", 0, loc());
        f.insert_variable(Variable::new(
            "p",
            Scope::Local,
            Value::reference(
                Value::primitive(Prim::Int(9), "int").with_location(Location::Heap),
                "int*",
            ),
        ));
        let st = ProgramState::new(
            f,
            vec![Variable::new(
                "G",
                Scope::Global,
                Value::primitive(Prim::Str("hi".into()), "char*"),
            )],
            PauseReason::Step,
        );
        let json = serde_json::to_string_pretty(&st).unwrap();
        let back: ProgramState = serde_json::from_str(&json).unwrap();
        assert_eq!(st, back);
        assert_eq!(back.stack_depth(), 1);
    }

    #[test]
    fn scope_displays_lowercase() {
        assert_eq!(Scope::Local.to_string(), "local");
        assert_eq!(Scope::Register.to_string(), "register");
    }
}
